// Golden per-pass checks for the tape optimizer (rtl/compiled/opt) on
// hand-built netlists with known fold/DCE/fusion structure, plus the
// fault-overlay-safety contract: kSafe tapes keep force/flip semantics
// exact, kFull tapes are refused by the batch fault session.
#include "rtl/compiled/opt/passes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/fault.hpp"
#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl::compiled {
namespace {

/// a AND const0 -> 0, a OR const1 -> 1, a XOR a -> 0 are all fault-safe
/// folds (results insensitive to forcing `a`); copies (x XOR const0 -> x)
/// and AND over a *folded* constant need full-mode propagation.  n4 = a^0
/// may NOT be aliased (its target is a primary input, which moves outside
/// eval()); n6 = m^0 aliases onto the NOT's output slot.
Netlist fold_fixture(NetId* a_out = nullptr) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_cell(CellKind::kConst0);
  const NetId o = nl.add_cell(CellKind::kConst1);
  const NetId n1 = nl.add_cell(CellKind::kAnd2, a, z);
  const NetId n2 = nl.add_cell(CellKind::kOr2, a, o);
  const NetId n3 = nl.add_cell(CellKind::kXor2, a, a);
  const NetId n4 = nl.add_cell(CellKind::kXor2, a, z);
  const NetId n5 = nl.add_cell(CellKind::kAnd2, n1, a);
  const NetId m = nl.add_cell(CellKind::kNot, a);
  const NetId n6 = nl.add_cell(CellKind::kXor2, m, z);
  nl.bind_output("y1", Bus{{n1}});
  nl.bind_output("y2", Bus{{n2}});
  nl.bind_output("y3", Bus{{n3}});
  nl.bind_output("y4", Bus{{n4}});
  nl.bind_output("y5", Bus{{n5}});
  nl.bind_output("y6", Bus{{n6}});
  if (a_out != nullptr) *a_out = a;
  return nl;
}

TEST(TapeOpt, SafeFoldAbsorbsImmuneConstants) {
  const Netlist nl = fold_fixture();
  const auto raw = compile(nl);
  OptStats st;
  const auto folded = opt::fold_constants(*raw, /*fault_safe=*/true, &st);
  EXPECT_EQ(raw->instrs().size(), 7u);
  EXPECT_EQ(st.folded, 3u);   // a&0, a|1, a^a
  EXPECT_EQ(st.aliased, 0u);  // copies are not fault-safe
  EXPECT_EQ(folded->instrs().size(), 4u);  // a^0, n1&a, m, m^0 survive
  EXPECT_EQ(folded->level(), OptLevel::kSafe);
  EXPECT_TRUE(folded->fault_overlay_safe());
  // Every net is still materialized and observable.
  for (NetId n = 0; n < nl.net_count(); ++n) {
    EXPECT_TRUE(folded->materialized(n));
  }
}

TEST(TapeOpt, FullFoldPropagatesAndAliases) {
  const Netlist nl = fold_fixture();
  const auto raw = compile(nl);
  OptStats st;
  const auto folded = opt::fold_constants(*raw, /*fault_safe=*/false, &st);
  EXPECT_EQ(st.folded, 4u);   // + n5 = folded0 & a
  EXPECT_EQ(st.aliased, 1u);  // m^0 -> m (a^0 refused: PI target)
  EXPECT_EQ(folded->instrs().size(), 2u);  // a^0 kept, m kept
  EXPECT_EQ(folded->level(), OptLevel::kFull);
  EXPECT_FALSE(folded->fault_overlay_safe());
}

TEST(TapeOpt, FoldedValuesAreBitExact) {
  NetId a = kNullNet;
  const Netlist nl = fold_fixture(&a);
  for (const bool safe : {true, false}) {
    const auto folded = opt::fold_constants(*compile(nl), safe);
    CompiledSimulator ref(compile(nl));
    CompiledSimulator sim(folded);
    const std::uint64_t stim = 0xDEADBEEFCAFEF00Dull;
    ref.set_input_mask(a, stim);
    sim.set_input_mask(a, stim);
    ref.eval();
    sim.eval();
    for (NetId n = 0; n < nl.net_count(); ++n) {
      EXPECT_EQ(sim.block(n).w[0], ref.lane_mask(n))
          << "net " << n << " safe=" << safe;
    }
  }
}

TEST(TapeOpt, DeadSlotEliminationKeepsRoots) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellKind::kXor2, a, b);
  const NetId dead1 = nl.add_cell(CellKind::kAnd2, a, b);
  const NetId dead2 = nl.add_cell(CellKind::kOr2, dead1, a);
  const NetId fed = nl.add_cell(CellKind::kAnd2, x, b);  // feeds a DFF
  const NetId q = nl.add_cell(CellKind::kDff, fed);
  nl.bind_output("y", Bus{{x}});
  (void)q;

  OptStats st;
  const auto pruned = opt::eliminate_dead(*compile(nl), &st);
  EXPECT_EQ(st.dead_removed, 2u);
  EXPECT_EQ(pruned->instrs().size(), 2u);  // x (PO) and fed (D pin)
  EXPECT_TRUE(pruned->materialized(x));
  EXPECT_TRUE(pruned->materialized(fed));
  EXPECT_TRUE(pruned->materialized(q));
  EXPECT_FALSE(pruned->materialized(dead1));
  EXPECT_FALSE(pruned->materialized(dead2));

  // Forcing an eliminated net is a silent no-op (matches the interpreter,
  // where the dead cone reaches no observable); observing it throws.
  CompiledSimulator sim(pruned);
  sim.force(dead1, ~std::uint64_t{0}, ~std::uint64_t{0});
  sim.release(dead1, ~std::uint64_t{0});
  sim.eval();
  EXPECT_THROW((void)sim.lane_mask(dead1), std::invalid_argument);
}

TEST(TapeOpt, FullAdderFusionPairsSymmetricTuples) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId s = nl.add_cell(CellKind::kAddSum, a, b, c);
  const NetId g = nl.add_cell(CellKind::kAddCarry, a, b, c);
  const NetId g2 = nl.add_cell(CellKind::kAddCarry, a, c, b);  // reordered
  const NetId s2 = nl.add_cell(CellKind::kAddSum, b, c, a);    // reordered
  const NetId lone = nl.add_cell(CellKind::kAddCarry, a, b, b);  // no partner
  nl.bind_output("s", Bus{{s}});
  nl.bind_output("g", Bus{{g}});
  nl.bind_output("g2", Bus{{g2}});
  nl.bind_output("s2", Bus{{s2}});
  nl.bind_output("lone", Bus{{lone}});

  // Sum and carry are symmetric in (a, b, c): pairs match modulo operand
  // permutation, so both the exact (s, g) pair and the permuted (g2, s2)
  // pair fuse; `lone` has no partner over {a, b, b}.
  OptStats st;
  const auto fused = opt::fuse_full_adders(*compile(nl), &st);
  EXPECT_EQ(st.fused_pairs, 2u);
  ASSERT_EQ(fused->instrs().size(), 3u);
  const Instr* fa = nullptr;
  for (const Instr& it : fused->instrs()) {
    if (it.op == Op::kFullAdd && it.out == fused->slot_of(s)) fa = &it;
  }
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->out2, fused->slot_of(g));

  CompiledSimulator sim(fused);
  const std::uint64_t va = 0xF0F0F0F0F0F0F0F0ull;
  const std::uint64_t vb = 0xCCCCCCCCCCCCCCCCull;
  const std::uint64_t vc = 0xAAAAAAAAAAAAAAAAull;
  sim.set_input_mask(a, va);
  sim.set_input_mask(b, vb);
  sim.set_input_mask(c, vc);
  sim.eval();
  EXPECT_EQ(sim.lane_mask(s), va ^ vb ^ vc);
  EXPECT_EQ(sim.lane_mask(s2), va ^ vb ^ vc);
  EXPECT_EQ(sim.lane_mask(g), (va & vb) | (vc & (va ^ vb)));
  EXPECT_EQ(sim.lane_mask(g2), (va & vb) | (vc & (va ^ vb)));
  EXPECT_EQ(sim.lane_mask(lone), vb);  // maj(a, b, b) = b
}

TEST(TapeOpt, RenumberCompactsOrphanedSlots) {
  const Netlist nl = fold_fixture();
  const auto raw = compile(nl);
  const auto full = opt::fold_constants(*raw, /*fault_safe=*/false);
  const auto pruned = opt::eliminate_dead(*full);
  OptStats st;
  const auto packed = opt::renumber(*pruned, &st);
  // The m^0 alias orphaned one slot; everything else keeps a net.
  EXPECT_EQ(st.slots_after, packed->slot_count());
  EXPECT_LT(packed->slot_count(), raw->slot_count());
  // Slot maps stay coherent: every materialized net's slot is in range and
  // round-trips through net_of for its occupant.
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (!packed->materialized(n)) continue;
    EXPECT_LT(packed->slot_of(n), packed->slot_count());
  }
}

TEST(TapeOpt, OptimizePipelineAccumulatesStats) {
  const Netlist nl = fold_fixture();
  const auto raw = compile(nl);
  OptStats st;
  const auto tape = opt::optimize(*raw, OptLevel::kSafe, &st);
  EXPECT_EQ(st.instrs_before, raw->instrs().size());
  EXPECT_EQ(st.instrs_after, tape->instrs().size());
  EXPECT_EQ(st.slots_before, raw->slot_count());
  EXPECT_EQ(st.slots_after, tape->slot_count());
  EXPECT_EQ(tape->opt_stats().folded, st.folded);
  EXPECT_EQ(tape->level(), OptLevel::kSafe);
  EXPECT_THROW((void)opt::optimize(*raw, OptLevel::kNone, nullptr),
               std::invalid_argument);
}

TEST(TapeOpt, CompileWithLevelMatchesPipeline) {
  const Netlist nl = fold_fixture();
  const auto direct = compile(nl, OptLevel::kFull);
  const auto staged = opt::optimize(*compile(nl), OptLevel::kFull);
  EXPECT_EQ(direct->instrs().size(), staged->instrs().size());
  EXPECT_EQ(direct->slot_count(), staged->slot_count());
  EXPECT_EQ(direct->level(), OptLevel::kFull);
  const auto raw = compile(nl, OptLevel::kNone);
  EXPECT_EQ(raw->level(), OptLevel::kNone);
}

TEST(TapeOpt, BatchSessionRefusesFullTapesForFaults) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_cell(CellKind::kConst0);
  const NetId n = nl.add_cell(CellKind::kXor2, a, z);
  const NetId q = nl.add_cell(CellKind::kDff, n);
  nl.bind_output("y", Bus{{q}});

  BatchFaultSession full(compile(nl, OptLevel::kFull));
  Fault f;
  f.kind = FaultKind::kStuckAt1;
  f.net = n;
  f.cycle = 0;
  EXPECT_THROW(full.arm(0, f), std::invalid_argument);

  BatchFaultSession safe(compile(nl, OptLevel::kSafe));
  EXPECT_NO_THROW(safe.arm(0, f));
}

// A glitch on a net the kSafe folder turned into a constant (a & const0 is
// absorbing, so its instruction is deleted and only the constant-image slot
// remains) must end with the scheduled cycle.  The interpreter re-evaluates
// the still-present cell on the next settle; the compiled engine has no
// instruction to do that, so release() restores the slot from the constant
// image -- without it the glitch behaves as a stuck-at on that lane.
TEST(TapeOpt, GlitchOnFoldedConstantNetIsTransient) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_cell(CellKind::kConst0);
  const NetId g = nl.add_cell(CellKind::kAnd2, a, z);  // folds at kSafe
  const NetId x = nl.add_cell(CellKind::kXor2, g, a);
  const NetId q = nl.add_cell(CellKind::kDff, x);
  nl.bind_output("y", Bus{{q}});
  nl.bind_output("yg", Bus{{g}});

  Fault f;
  f.kind = FaultKind::kGlitch;
  f.net = g;
  f.cycle = 1;
  f.glitch_value = true;

  Simulator ref_sim(nl);
  FaultInjector ref(nl, ref_sim);
  ref.arm(f);

  const auto tape = compile(nl, OptLevel::kSafe);
  ASSERT_EQ(tape->instrs().size(), 1u);  // only x survives; g is folded
  BatchFaultSession ses(tape);
  ses.arm(/*lane=*/0, f);

  const std::uint64_t stim = 0b110101;
  for (std::uint64_t cyc = 0; cyc < 6; ++cyc) {
    const bool av = ((stim >> cyc) & 1) != 0;
    ref.set_input(a, av);
    ses.sim().set_input_block(a, av ? LaneBlock<1>::ones()
                                    : LaneBlock<1>::zeros());
    ref.step();
    ses.step();
    for (const NetId n : {g, x, q}) {
      // Lane 0 carries the glitch; lane 1 is fault-free and must match too.
      // Fault-free: g = a & 0 = 0, x = g ^ a = a, and the edge at the end
      // of this cycle clocks the settled x into q.
      EXPECT_EQ(ses.sim().value(n, 0), ref.value(n))
          << "net " << n << " cycle " << cyc;
      EXPECT_EQ(ses.sim().value(n, 1), n == g ? false : av)
          << "net " << n << " cycle " << cyc;
    }
  }
}

// Same contract on the 256-lane engine: a release on a folded constant
// reloads the image at the next eval() -- lazily, like every other released
// net -- and only on lanes no longer pinned.
TEST(TapeOpt, WideReleaseRestoresFoldedConstant) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId o = nl.add_cell(CellKind::kConst1);
  const NetId g = nl.add_cell(CellKind::kOr2, a, o);  // folds to const1
  nl.bind_output("y", Bus{{g}});

  WideSimulator<4> sim(compile(nl, OptLevel::kSafe));
  const auto l200 = LaneBlock<4>::lane_bit(200);
  const auto l7 = LaneBlock<4>::lane_bit(7);
  auto both = l200;
  both |= l7;
  sim.force(g, both, LaneBlock<4>::zeros());
  sim.eval();
  EXPECT_FALSE(sim.value(g, 200));
  EXPECT_FALSE(sim.value(g, 7));
  sim.release(g, l200);
  EXPECT_FALSE(sim.value(g, 200));  // lazy: visible until the next eval()
  sim.eval();
  EXPECT_TRUE(sim.value(g, 200));  // restored from the constant image
  EXPECT_FALSE(sim.value(g, 7));   // still pinned
  sim.release(g, l7);
  sim.eval();
  EXPECT_TRUE(sim.value(g, 7));
  EXPECT_TRUE(sim.value(g, 200));
}

TEST(TapeOpt, ConstImageSurvivesWideReset) {
  Netlist nl;
  const NetId one = nl.add_cell(CellKind::kConst1);
  const NetId a = nl.add_input("a");
  const NetId n = nl.add_cell(CellKind::kAnd2, a, one);
  nl.bind_output("y", Bus{{n}});
  const auto tape = compile(nl, OptLevel::kSafe);
  WideSimulator<4> sim(tape);
  sim.reset();
  EXPECT_EQ(sim.block(one), LaneBlock<4>::ones());
  sim.set_input_block(a, LaneBlock<4>::ones());
  sim.eval();
  EXPECT_EQ(sim.block(n), LaneBlock<4>::ones());
}

TEST(TapeOpt, WideLanesAreIndependent) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellKind::kXor2, a, b);
  const NetId q = nl.add_cell(CellKind::kDff, x);
  nl.bind_output("y", Bus{{q}});

  WideSimulator<4> sim(compile(nl));
  ASSERT_EQ(WideSimulator<4>::kTotalLanes, 256u);
  // Drive lane L of `a` with bit parity of L and `b` with 1, lane-by-lane.
  for (unsigned lane = 0; lane < 256; lane += 3) {
    sim.set_input(a, lane, (lane & 1) != 0);
    sim.set_input(b, lane, true);
  }
  sim.step();
  for (unsigned lane = 0; lane < 256; lane += 3) {
    EXPECT_EQ(sim.value(q, lane), (lane & 1) == 0) << "lane " << lane;
  }

  // Force and SEU overlays address the full 256-lane space.
  sim.force(x, LaneBlock<4>::lane_bit(200), LaneBlock<4>::lane_bit(200));
  sim.eval();
  EXPECT_TRUE(sim.value(x, 200));
  sim.release(x, LaneBlock<4>::lane_bit(200));
  sim.clock_edge();
  sim.flip_state(q, LaneBlock<4>::lane_bit(70));
  EXPECT_TRUE(sim.value(q, 70));
}

}  // namespace
}  // namespace dwt::rtl::compiled
