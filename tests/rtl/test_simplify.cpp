#include "rtl/simplify.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/builder.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/registers.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

/// Checks functional equivalence of two netlists with identical port names.
void expect_equivalent(const Netlist& a, const Netlist& b,
                       const std::string& in_bus, const std::string& out_bus,
                       int in_width, int cycles_per_vector) {
  Simulator sa(a), sb(b);
  const Bus ia = a.find_input_bus(in_bus);
  const Bus ib = b.find_input_bus(in_bus);
  const Bus oa = a.output(out_bus);
  const Bus ob = b.output(out_bus);
  common::Rng rng(13);
  const std::int64_t lo = -(std::int64_t{1} << (in_width - 1));
  const std::int64_t hi = (std::int64_t{1} << (in_width - 1)) - 1;
  for (int i = 0; i < 50; ++i) {
    const std::int64_t v = rng.uniform(lo, hi);
    sa.set_bus(ia, v);
    sb.set_bus(ib, v);
    for (int c = 0; c < cycles_per_vector; ++c) {
      sa.step();
      sb.step();
    }
    EXPECT_EQ(sa.read_bus(oa), sb.read_bus(ob)) << "v=" << v;
  }
}

TEST(Simplify, FoldsConstantGates) {
  Netlist nl;
  const NetId a = nl.add_input("a[0]");
  const NetId and0 = nl.add_cell(CellKind::kAnd2, a, nl.const0());
  const NetId or0 = nl.add_cell(CellKind::kOr2, and0, a);
  nl.bind_output("y", Bus{{or0}});
  const Netlist out = simplify(nl);
  // and(a,0) = 0, or(0,a) = a: no gates remain.
  EXPECT_EQ(out.count_kind(CellKind::kAnd2), 0u);
  EXPECT_EQ(out.count_kind(CellKind::kOr2), 0u);
}

TEST(Simplify, RemovesDoubleInverters) {
  Netlist nl;
  const NetId a = nl.add_input("a[0]");
  const NetId n1 = nl.add_cell(CellKind::kNot, a);
  const NetId n2 = nl.add_cell(CellKind::kNot, n1);
  nl.bind_output("y", Bus{{n2}});
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.count_kind(CellKind::kNot), 0u);
  EXPECT_EQ(out.output("y").bits[0], out.find_input_bus("a").bits[0]);
}

TEST(Simplify, FoldsXorIdentities) {
  Netlist nl;
  const NetId a = nl.add_input("a[0]");
  const NetId x0 = nl.add_cell(CellKind::kXor2, a, nl.const0());
  const NetId x1 = nl.add_cell(CellKind::kXor2, x0, nl.const1());
  const NetId xx = nl.add_cell(CellKind::kXor2, a, a);
  nl.bind_output("y", Bus{{x1, xx}});
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.count_kind(CellKind::kXor2), 0u);
  EXPECT_EQ(out.count_kind(CellKind::kNot), 1u);  // xor with 1 = inverter
}

TEST(Simplify, FoldsMuxWithConstantSelect) {
  Netlist nl;
  const NetId a = nl.add_input("a[0]");
  const NetId b = nl.add_input("b[0]");
  const NetId m = nl.add_cell(CellKind::kMux2, a, b, nl.const1());
  nl.bind_output("y", Bus{{m}});
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.count_kind(CellKind::kMux2), 0u);
  EXPECT_EQ(out.output("y").bits[0], out.find_input_bus("b").bits[0]);
}

TEST(Simplify, PreservesChainAdders) {
  // Adder megacore structure must survive even with tied-off inputs.
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus z = b.constant(0, 4);
  const Bus s = b.add(a, z, AdderStyle::kCarryChain, 5, "s");
  nl.bind_output("y", s);
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.count_kind(CellKind::kAddSum), 5u);
}

TEST(Simplify, PreservesRegistersAndBehaviour) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true);
  const Word x = word_input(nl, "x", 8);
  const Word y = shiftadd_multiply(
      p, x, make_shiftadd_plan(-406, Recoding::kBinaryWithReuse),
      AdderStyle::kCarryChain, SumStructure::kSequential, "m");
  nl.bind_output("y", y.bus);
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.count_kind(CellKind::kDff), nl.count_kind(CellKind::kDff));
  expect_equivalent(nl, out, "x", "y", 8, y.depth + 1);
}

TEST(Simplify, EquivalentOnGateHeavyLogic) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 7);
  const Word prod = array_multiply_const(p, x, 114, 10, AdderStyle::kRippleGates,
                                         SumStructure::kSequential, "m");
  nl.bind_output("y", prod.bus);
  const Netlist out = simplify(nl);
  EXPECT_LT(out.cell_count(), nl.cell_count());  // masked rows folded
  expect_equivalent(nl, out, "x", "y", 7, 1);
}

TEST(Simplify, KeepsClusterTags) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus bb = nl.add_input_bus("b", 4);
  const Bus s = b.add(a, bb, AdderStyle::kRippleGates, 5, "s");
  nl.bind_output("y", s);
  const Netlist out = simplify(nl);
  bool found = false;
  for (const Cell& c : out.cells()) {
    if (c.cluster_id >= 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Simplify, PreservesOutputPortShape) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  nl.bind_output("y", b.shl(a, 2));
  const Netlist out = simplify(nl);
  EXPECT_EQ(out.output("y").width(), 6);
}

}  // namespace
}  // namespace dwt::rtl
