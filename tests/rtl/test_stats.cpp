#include "rtl/stats.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"
#include "rtl/registers.hpp"

namespace dwt::rtl {
namespace {

TEST(Stats, CountsPrimitives) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus bb = nl.add_input_bus("b", 4);
  const Bus s = b.add(a, bb, AdderStyle::kCarryChain, 5, "s");
  const Bus r = b.reg(s, "r");
  nl.bind_output("y", r);
  const NetlistStats st = compute_stats(nl);
  EXPECT_EQ(st.register_bits, 5u);
  EXPECT_EQ(st.carry_chains, 1u);
  EXPECT_EQ(st.chain_bits, 5u);
  EXPECT_EQ(st.gate_cells, 0u);
  EXPECT_EQ(st.cells, nl.cell_count());
}

TEST(Stats, GateCellsForStructuralAdder) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus bb = nl.add_input_bus("b", 4);
  const Bus s = b.add(a, bb, AdderStyle::kRippleGates, 5, "s");
  nl.bind_output("y", s);
  const NetlistStats st = compute_stats(nl);
  EXPECT_EQ(st.carry_chains, 0u);
  EXPECT_EQ(st.gate_cells, 25u);  // 5 gates per full-adder bit
}

TEST(Stats, PipelineDepthCountsRegistersOnPath) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 2);
  Bus x = a;
  for (int i = 0; i < 4; ++i) x = b.reg(x, "r" + std::to_string(i));
  nl.bind_output("y", x);
  EXPECT_EQ(pipeline_depth(nl), 4);
}

TEST(Stats, PipelineDepthZeroForCombinational) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 2);
  const Bus s = b.add(a, a, AdderStyle::kCarryChain, 3, "s");
  nl.bind_output("y", s);
  EXPECT_EQ(pipeline_depth(nl), 0);
}

TEST(Stats, PipelineDepthTakesLongestBranch) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 2);
  const Bus shallow = b.reg(a, "r1");
  const Bus deep = b.delay(a, 3, "d");
  const Bus s = b.add(shallow, deep, AdderStyle::kCarryChain, 3, "s");
  nl.bind_output("y", s);
  EXPECT_EQ(pipeline_depth(nl), 3);
}

TEST(Stats, ToStringMentionsKeyNumbers) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 2);
  nl.bind_output("y", b.reg(a, "r"));
  const std::string s = compute_stats(nl).to_string();
  EXPECT_NE(s.find("registers=2"), std::string::npos);
  EXPECT_NE(s.find("pipeline_stages=1"), std::string::npos);
}

}  // namespace
}  // namespace dwt::rtl
