#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rtl/builder.hpp"
#include "rtl/simulator.hpp"
#include "rtl/vcd.hpp"
#include "rtl/verilog_writer.hpp"

namespace dwt::rtl {
namespace {

Netlist small_design(Bus& in, Bus& out) {
  Netlist nl;
  Builder b(nl);
  in = nl.add_input_bus("x", 3);
  const Bus s = b.add(in, in, AdderStyle::kCarryChain, 4, "s");
  out = b.reg(s, "r");
  nl.bind_output("y", out);
  return nl;
}

TEST(VerilogWriter, EmitsModuleSkeleton) {
  Bus in, out;
  const Netlist nl = small_design(in, out);
  const std::string v = to_verilog(nl, "dwt_core");
  EXPECT_NE(v.find("module dwt_core"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("output wire [3:0] y"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(VerilogWriter, EveryCellEmitted) {
  Bus in, out;
  const Netlist nl = small_design(in, out);
  const std::string v = to_verilog(nl, "m");
  // One assign or always line per cell (plus wires/regs declarations).
  std::size_t statements = 0;
  std::istringstream is(v);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("assign") != std::string::npos ||
        line.find("always") != std::string::npos) {
      ++statements;
    }
  }
  EXPECT_GE(statements, nl.cell_count());
}

TEST(VerilogWriter, CoversAllCellKinds) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  (void)nl.add_cell(CellKind::kNot, a);
  (void)nl.add_cell(CellKind::kAnd2, a, b);
  (void)nl.add_cell(CellKind::kOr2, a, b);
  (void)nl.add_cell(CellKind::kXor2, a, b);
  (void)nl.add_cell(CellKind::kMux2, a, b, a);
  (void)nl.add_cell(CellKind::kAddSum, a, b, a);
  (void)nl.add_cell(CellKind::kAddCarry, a, b, a);
  (void)nl.add_cell(CellKind::kDff, a);
  (void)nl.const0();
  (void)nl.const1();
  const std::string v = to_verilog(nl, "kinds");
  EXPECT_NE(v.find("~"), std::string::npos);
  EXPECT_NE(v.find("&"), std::string::npos);
  EXPECT_NE(v.find("|"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("?"), std::string::npos);
  EXPECT_NE(v.find("1'b0"), std::string::npos);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
}

TEST(VcdWriter, ProducesHeaderAndChanges) {
  Bus in, out;
  const Netlist nl = small_design(in, out);
  const std::string path = ::testing::TempDir() + "/wave.vcd";
  {
    std::vector<NetId> traced = in.bits;
    traced.insert(traced.end(), out.bits.begin(), out.bits.end());
    VcdWriter vcd(nl, traced, path);
    Simulator sim(nl);
    for (int t = 0; t < 4; ++t) {
      sim.set_bus(in, t);
      sim.step();
      vcd.sample(sim, static_cast<std::uint64_t>(t) * 10);
    }
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("$timescale"), std::string::npos);
  EXPECT_NE(content.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(content.find("#0"), std::string::npos);
  EXPECT_NE(content.find("#30"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VcdWriter, DumpsOnlyChanges) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const std::string path = ::testing::TempDir() + "/changes.vcd";
  {
    VcdWriter vcd(nl, {d}, path);
    Simulator sim(nl);
    sim.set_input(d, true);
    sim.eval();
    vcd.sample(sim, 0);  // change to 1
    vcd.sample(sim, 1);  // no change
    vcd.sample(sim, 2);  // no change
  }
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string content = ss.str();
  // Exactly one value-change line ("1!").
  std::size_t changes = 0, pos = 0;
  while ((pos = content.find("1!", pos)) != std::string::npos) {
    ++changes;
    pos += 2;
  }
  EXPECT_EQ(changes, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dwt::rtl
