#include "rtl/multipliers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

struct MultCase {
  std::int64_t constant;
  AdderStyle style;
  SumStructure structure;
  bool pipelined;
};

class ShiftAddMultiplierTest : public ::testing::TestWithParam<MultCase> {};

TEST_P(ShiftAddMultiplierTest, ExactProduct) {
  const MultCase cfg = GetParam();
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, cfg.pipelined);
  const Word x = word_input(nl, "x", 9);
  const ShiftAddPlan plan =
      make_shiftadd_plan(cfg.constant, Recoding::kBinaryWithReuse);
  const Word y = shiftadd_multiply(p, x, plan, cfg.style, cfg.structure, "m");
  nl.bind_output("y", y.bus);
  nl.validate();
  Simulator sim(nl);
  common::Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const std::int64_t vx = rng.uniform(-256, 255);
    sim.set_bus(x.bus, vx);
    for (int k = 0; k <= y.depth; ++k) sim.step();
    EXPECT_EQ(sim.read_bus(y.bus), cfg.constant * vx)
        << "c=" << cfg.constant << " x=" << vx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConstants, ShiftAddMultiplierTest,
    ::testing::Values(
        MultCase{-406, AdderStyle::kCarryChain, SumStructure::kSequential, false},
        MultCase{-14, AdderStyle::kCarryChain, SumStructure::kSequential, false},
        MultCase{226, AdderStyle::kCarryChain, SumStructure::kSequential, false},
        MultCase{114, AdderStyle::kRippleGates, SumStructure::kSequential, false},
        MultCase{-315, AdderStyle::kRippleGates, SumStructure::kSequential, false},
        MultCase{208, AdderStyle::kCarryChain, SumStructure::kTree, false},
        MultCase{-406, AdderStyle::kCarryChain, SumStructure::kSequential, true},
        MultCase{-14, AdderStyle::kCarryChain, SumStructure::kSequential, true},
        MultCase{-315, AdderStyle::kRippleGates, SumStructure::kSequential, true},
        MultCase{226, AdderStyle::kCarryChain, SumStructure::kTree, true}));

TEST(ShiftAddMultiplier, RangeCoversProduct) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 8);
  const ShiftAddPlan plan = make_shiftadd_plan(-406, Recoding::kBinary);
  const Word y = shiftadd_multiply(p, x, plan, AdderStyle::kCarryChain,
                                   SumStructure::kSequential, "m");
  EXPECT_TRUE(y.range.contains(-406 * 127));
  EXPECT_TRUE(y.range.contains(-406 * -128));
}

class ArrayMultiplierTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ArrayMultiplierTest, ConstTimesDataExact) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 9);
  const Word y = array_multiply_const(p, x, GetParam(), 10,
                                      AdderStyle::kCarryChain,
                                      SumStructure::kSequential, "m");
  nl.bind_output("y", y.bus);
  nl.validate();
  Simulator sim(nl);
  common::Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    const std::int64_t vx = rng.uniform(-256, 255);
    sim.set_bus(x.bus, vx);
    sim.eval();
    EXPECT_EQ(sim.read_bus(y.bus), GetParam() * vx) << vx;
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, ArrayMultiplierTest,
                         ::testing::Values<std::int64_t>(-406, -14, 226, 114,
                                                         -315, 208, -512, 511));

TEST(ArrayMultiplier, GenericSignedExhaustiveSmall) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 4);
  const Word y = word_input(nl, "y", 4);
  const Word prod = array_multiply(p, x, y, AdderStyle::kCarryChain,
                                   SumStructure::kSequential, "m");
  nl.bind_output("p", prod.bus);
  Simulator sim(nl);
  for (std::int64_t vx = -8; vx <= 7; ++vx) {
    for (std::int64_t vy = -8; vy <= 7; ++vy) {
      sim.set_bus(x.bus, vx);
      sim.set_bus(y.bus, vy);
      sim.eval();
      EXPECT_EQ(sim.read_bus(prod.bus), vx * vy) << vx << "*" << vy;
    }
  }
}

TEST(ArrayMultiplier, GenericSignedRandomWide) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 10);
  const Word y = word_input(nl, "y", 9);
  const Word prod = array_multiply(p, x, y, AdderStyle::kRippleGates,
                                   SumStructure::kSequential, "m");
  nl.bind_output("p", prod.bus);
  Simulator sim(nl);
  common::Rng rng(29);
  for (int i = 0; i < 150; ++i) {
    const std::int64_t vx = rng.uniform(-512, 511);
    const std::int64_t vy = rng.uniform(-256, 255);
    sim.set_bus(x.bus, vx);
    sim.set_bus(y.bus, vy);
    sim.eval();
    EXPECT_EQ(sim.read_bus(prod.bus), vx * vy) << vx << "*" << vy;
  }
}

TEST(ArrayMultiplier, RejectsBadConstant) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 8);
  EXPECT_THROW(array_multiply_const(p, x, 600, 10, AdderStyle::kCarryChain,
                                    SumStructure::kSequential, "m"),
               std::invalid_argument);
  EXPECT_THROW(array_multiply_const(p, x, 1, 1, AdderStyle::kCarryChain,
                                    SumStructure::kSequential, "m"),
               std::invalid_argument);
}

TEST(ArrayMultiplier, LargerThanShiftAdd) {
  // The megacore structure is why design 1 outweighs design 2.
  Netlist a, s;
  {
    Builder b(a);
    Pipeliner p(b, false);
    const Word x = word_input(a, "x", 9);
    const Word y = array_multiply_const(p, x, -406, 10, AdderStyle::kCarryChain,
                                        SumStructure::kSequential, "m");
    a.bind_output("y", y.bus);
  }
  {
    Builder b(s);
    Pipeliner p(b, false);
    const Word x = word_input(s, "x", 9);
    const Word y = shiftadd_multiply(
        p, x, make_shiftadd_plan(-406, Recoding::kBinaryWithReuse),
        AdderStyle::kCarryChain, SumStructure::kSequential, "m");
    s.bind_output("y", y.bus);
  }
  EXPECT_GT(a.cell_count(), s.cell_count());
}

}  // namespace
}  // namespace dwt::rtl
