#include "rtl/compiled/cone_session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/builder.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/cone_index.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/fault.hpp"
#include "rtl/harden.hpp"

namespace dwt::rtl::compiled {
namespace {

// ---------------------------------------------------------------------------
// ConeIndex on hand-built netlists
// ---------------------------------------------------------------------------

TEST(ConeIndex, CombinationalChainSpans) {
  // a -> n1 -> n2 -> n3, side input b into n2.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId n1 = nl.add_cell(CellKind::kNot, a);
  const NetId n2 = nl.add_cell(CellKind::kAnd2, n1, b);
  const NetId n3 = nl.add_cell(CellKind::kNot, n2);
  const auto tape = compile(nl);
  const auto cone = ConeIndex::build(*tape);
  ASSERT_EQ(cone->instr_count(), 3u);

  // a's cone covers all three instructions; n3 has no readers -- empty cone.
  const ConeSpan sa = cone->span_of_net(*tape, a);
  EXPECT_EQ(sa.lo, 0u);
  EXPECT_EQ(sa.hi, 3u);
  EXPECT_TRUE(cone->span_of_net(*tape, n3).empty());
  // b feeds n2, whose fan-out reaches n3: contiguous cover of both.
  const ConeSpan sb = cone->span_of_net(*tape, b);
  EXPECT_EQ(sb.length(), 2u);
  // Every span is an interval inside the tape.
  for (const NetId n : {a, b, n1, n2, n3}) {
    const ConeSpan s = cone->span_of_net(*tape, n);
    EXPECT_LE(s.lo, s.hi);
    EXPECT_LE(s.hi, cone->instr_count());
  }
}

TEST(ConeIndex, DInheritsQConeAcrossRegister) {
  // x -> DFF -> inverter: a corrupted D strikes the inverter one cycle
  // later, so D's cone must cover Q's readers.
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId d = nl.add_cell(CellKind::kNot, x);
  const NetId q = nl.add_cell(CellKind::kDff, d);
  const NetId y = nl.add_cell(CellKind::kNot, q);
  (void)y;
  const auto tape = compile(nl);
  const auto cone = ConeIndex::build(*tape);
  const ConeSpan sq = cone->span_of_net(*tape, q);
  const ConeSpan sd = cone->span_of_net(*tape, d);
  EXPECT_FALSE(sq.empty());
  EXPECT_LE(sq.lo, sd.hi);
  // D's span covers everything Q's does.
  EXPECT_LE(sd.lo, sq.lo);
  EXPECT_GE(sd.hi, sq.hi);
  // d_of_q maps the register output back to its input slot.
  EXPECT_EQ(cone->d_of_q(tape->slot_of(q)), tape->slot_of(d));
  EXPECT_EQ(cone->d_of_q(tape->slot_of(d)), kNullSlot);
}

TEST(GoldenTrace, RecordsPostSettleBitsPerCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n = nl.add_cell(CellKind::kNot, a);
  const auto tape = compile(nl);
  GoldenTrace trace(tape->slot_count());
  WideSimulator<1> sim(tape);
  for (int c = 0; c < 4; ++c) {
    sim.set_input_block(
        a, (c & 1) != 0 ? WideSimulator<1>::Block::ones()
                        : WideSimulator<1>::Block::zeros());
    sim.eval();
    trace.append(sim);
    sim.clock_edge();
  }
  ASSERT_EQ(trace.cycles(), 4u);
  for (std::uint64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(trace.get(c, tape->slot_of(a)), (c & 1) != 0);
    EXPECT_EQ(trace.get(c, tape->slot_of(n)), (c & 1) == 0);
    EXPECT_EQ(trace.broadcast(c, tape->slot_of(n)),
              (c & 1) == 0 ? ~std::uint64_t{0} : 0u);
  }
}

// ---------------------------------------------------------------------------
// Cone session vs full session on the real designs
// ---------------------------------------------------------------------------

std::vector<std::int64_t> stimulus(std::size_t samples) {
  const dsp::Image img = dsp::make_still_tone_image(samples, 1, 42);
  std::vector<std::int64_t> x;
  for (std::size_t i = 0; i < samples; ++i) {
    x.push_back(static_cast<std::int64_t>(std::llround(img.at(i, 0))) - 128);
  }
  return x;
}

/// Draws a campaign-like random schedule over all fault kinds, arms it on
/// both sessions, and requires bit-identical per-lane streams and watch
/// masks.
void expect_cone_matches_full(hw::DesignId id, HardeningStyle harden) {
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const hw::DesignSpec spec = hw::design_spec(id);
  const auto design = cache.design(spec.config, harden);
  const hw::BuiltDatapath& dp = design->dp;
  const auto tape = cache.tape(spec.config, harden, OptLevel::kSafe);
  const auto cone = cache.cone_index(spec.config, harden, OptLevel::kSafe);
  const std::vector<std::int64_t> x = stimulus(16);
  const std::uint64_t total_cycles = hw::stream_cycle_count(dp, x.size());

  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    BatchFaultSession clean(tape);
    clean.set_trace(trace.get());
    (void)hw::run_stream_batch(dp, clean, x, 1);
  }
  ASSERT_EQ(trace->cycles(), total_cycles);

  const NetId flag = harden == HardeningStyle::kParity
                         ? dp.netlist.output(kErrorFlagPort).bits.front()
                         : kNullNet;
  const std::vector<NetId> seu = seu_targets(dp.netlist);
  const std::vector<NetId> stuck = stuck_targets(dp.netlist);
  const std::vector<NetId> glitch = glitch_targets(dp.netlist);
  const FaultKind kinds[] = {FaultKind::kSeuFlip, FaultKind::kGlitch,
                             FaultKind::kStuckAt0, FaultKind::kStuckAt1};

  common::Rng rng(1234);
  constexpr unsigned kLanes = 64;
  BatchFaultSession full(tape);
  ConeBatchSession<1> restricted(tape, cone, trace);
  std::vector<Fault> faults(kLanes);
  for (unsigned l = 0; l < kLanes; ++l) {
    Fault& f = faults[l];
    f.kind = kinds[static_cast<std::size_t>(rng.uniform(0, 3))];
    const std::vector<NetId>& pool = f.kind == FaultKind::kSeuFlip ? seu
                                     : f.kind == FaultKind::kGlitch ? glitch
                                                                    : stuck;
    f.net = pool[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
    f.cycle = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(total_cycles) - 2));
    f.glitch_value = rng.uniform(0, 1) != 0;
    full.arm(l, f);
    restricted.arm(l, f);
  }
  if (flag != kNullNet) {
    full.watch(flag);
    restricted.watch(flag);
  }
  const auto want = hw::run_stream_batch(dp, full, x, kLanes);
  const auto got = hw::run_stream_batch(dp, restricted, x, kLanes);
  ASSERT_EQ(want.size(), got.size());
  for (unsigned l = 0; l < kLanes; ++l) {
    EXPECT_EQ(want[l].low, got[l].low) << "lane " << l;
    EXPECT_EQ(want[l].high, got[l].high) << "lane " << l;
  }
  EXPECT_EQ(full.watch_mask(), restricted.watch_block().w[0]);
  // The restriction must actually restrict (and never exceed full cost).
  EXPECT_LE(restricted.executed_instructions(),
            restricted.full_instructions());
}

TEST(ConeSession, MatchesFullSessionDesign1) {
  expect_cone_matches_full(hw::DesignId::kDesign1, HardeningStyle::kNone);
}

TEST(ConeSession, MatchesFullSessionDesign3Tmr) {
  expect_cone_matches_full(hw::DesignId::kDesign3, HardeningStyle::kTmr);
}

TEST(ConeSession, MatchesFullSessionDesign2Parity) {
  expect_cone_matches_full(hw::DesignId::kDesign2, HardeningStyle::kParity);
}

TEST(ConeSession, SkipsCyclesBeforeEarliestFault) {
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const hw::DesignSpec spec = hw::design_spec(hw::DesignId::kDesign1);
  const auto dp = cache.design(spec.config);
  const auto tape =
      cache.tape(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const auto cone =
      cache.cone_index(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const std::vector<std::int64_t> x = stimulus(16);
  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    BatchFaultSession clean(tape);
    clean.set_trace(trace.get());
    (void)hw::run_stream_batch(dp->dp, clean, x, 1);
  }
  const std::uint64_t late = trace->cycles() - 2;
  // Pick the glitch target with the tightest non-empty cone so the
  // restriction has something to skip inside the active cycles too.
  NetId best = kNullNet;
  std::uint32_t best_len = 0;
  for (const NetId n : glitch_targets(dp->dp.netlist)) {
    const ConeSpan s = cone->span_of_net(*tape, n);
    if (s.empty()) continue;
    if (best == kNullNet || s.length() < best_len) {
      best = n;
      best_len = s.length();
    }
  }
  ASSERT_NE(best, kNullNet);
  ASSERT_LT(best_len, tape->instrs().size());
  Fault f;
  f.kind = FaultKind::kGlitch;
  f.net = best;
  f.cycle = late;
  ConeBatchSession<1> sess(tape, cone, trace);
  sess.arm(0, f);
  (void)hw::run_stream_batch(dp->dp, sess, x, 1);
  EXPECT_EQ(sess.skipped_cycles(), late);
  // Two active cycles over the tight interval only.
  EXPECT_EQ(sess.executed_instructions(), 2u * best_len);
  EXPECT_LT(sess.executed_instructions(), sess.full_instructions());
}

// a -> NOT -> DFF -> NOT, driven a=1 for 4 cycles then a=0: the inverter
// output n1 is golden-0 early and golden-1 for the rest of the run, a
// constant tail a stuck-at-1 force disappears into.
TEST(ConeSession, StuckAtRetiresOnceGoldenTailMatchesForce) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_cell(CellKind::kNot, a);
  const NetId q = nl.add_cell(CellKind::kDff, n1);
  const NetId y = nl.add_cell(CellKind::kNot, q);
  const auto tape = compile(nl);
  const auto cone = ConeIndex::build(*tape);
  constexpr std::uint64_t kCycles = 12;
  const auto drive = [a](auto& sess, std::uint64_t c) {
    Bus bus;
    bus.bits = {a};
    // A 1-bit bus is signed: -1 drives the bit high.
    sess.set_bus(bus, c < 4 ? -1 : 0);
  };
  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    WideSimulator<1> sim(tape);
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      sim.set_input_block(a, c < 4 ? WideSimulator<1>::Block::ones()
                                   : WideSimulator<1>::Block::zeros());
      sim.eval();
      trace->append(sim);
      sim.clock_edge();
    }
  }

  Fault f;
  f.kind = FaultKind::kStuckAt1;
  f.net = n1;
  f.cycle = 1;
  BatchFaultSession full(tape);
  ConeBatchSession<1> sess(tape, cone, trace);
  full.arm(0, f);
  sess.arm(0, f);
  Bus ybus;
  ybus.bits = {y};
  for (std::uint64_t c = 0; c < kCycles; ++c) {
    drive(full, c);
    drive(sess, c);
    full.step();
    sess.step();
    EXPECT_EQ(full.read_bus(ybus, 0), sess.read_bus(ybus, 0)) << "cycle " << c;
  }
  // The forced 1 equals golden n1 from cycle 4 on, and the register goes
  // golden after the edge of cycle 4, so cycles 5..11 are trace-served --
  // plus the pre-fault cycle 0, eight skipped cycles in all.
  EXPECT_TRUE(sess.retired());
  EXPECT_EQ(sess.skipped_cycles(), (kCycles - 5) + 1);
}

// Same circuit, stuck-at-0 against a golden-1 tail: the force never stops
// mattering, so the batch must not retire -- and must still match the full
// session bit for bit.
TEST(ConeSession, StuckAtAgainstGoldenTailNeverRetires) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_cell(CellKind::kNot, a);
  const NetId q = nl.add_cell(CellKind::kDff, n1);
  const NetId y = nl.add_cell(CellKind::kNot, q);
  const auto tape = compile(nl);
  const auto cone = ConeIndex::build(*tape);
  constexpr std::uint64_t kCycles = 12;
  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    WideSimulator<1> sim(tape);
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      sim.set_input_block(a, c < 4 ? WideSimulator<1>::Block::ones()
                                   : WideSimulator<1>::Block::zeros());
      sim.eval();
      trace->append(sim);
      sim.clock_edge();
    }
  }

  Fault f;
  f.kind = FaultKind::kStuckAt0;
  f.net = n1;
  f.cycle = 1;
  BatchFaultSession full(tape);
  ConeBatchSession<1> sess(tape, cone, trace);
  full.arm(0, f);
  sess.arm(0, f);
  Bus abus, ybus;
  abus.bits = {a};
  ybus.bits = {y};
  for (std::uint64_t c = 0; c < kCycles; ++c) {
    full.set_bus(abus, c < 4 ? -1 : 0);  // 1-bit bus is signed
    sess.set_bus(abus, c < 4 ? -1 : 0);
    full.step();
    sess.step();
    EXPECT_EQ(full.read_bus(ybus, 0), sess.read_bus(ybus, 0)) << "cycle " << c;
  }
  EXPECT_FALSE(sess.retired());
  EXPECT_EQ(sess.skipped_cycles(), 1u);  // the pre-fault cycle 0 only
}

// On a real design: find a stuck target whose golden trace ends in a long
// constant tail, force it to that tail value from the start, and require
// the batch to retire while staying bit-identical to the full session.
TEST(ConeSession, StuckAtRetiresOnRealDesignConstantTail) {
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const hw::DesignSpec spec = hw::design_spec(hw::DesignId::kDesign1);
  const auto dp = cache.design(spec.config);
  const auto tape =
      cache.tape(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const auto cone =
      cache.cone_index(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const std::vector<std::int64_t> x = stimulus(16);
  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    BatchFaultSession clean(tape);
    clean.set_trace(trace.get());
    (void)hw::run_stream_batch(dp->dp, clean, x, 1);
  }
  const std::uint64_t cycles = trace->cycles();
  const std::uint64_t margin =
      static_cast<std::uint64_t>(dp->dp.info.latency) + 4;

  // Pick the candidate whose constant tail starts latest while still
  // leaving the pipeline room to drain the divergence before the run ends
  // (tail > 0 means the force genuinely corrupts earlier cycles).
  NetId best = kNullNet;
  bool best_value = false;
  std::uint64_t best_tail = 0;
  for (const NetId n : stuck_targets(dp->dp.netlist)) {
    const Slot s = tape->slot_of(n);
    if (s == kNullSlot || cone->span_of_net(*tape, n).empty()) continue;
    const bool v = trace->get(cycles - 1, s);
    std::uint64_t tail = cycles;
    while (tail > 0 && trace->get(tail - 1, s) == v) --tail;
    if (tail > 0 && tail + margin <= cycles && tail > best_tail) {
      best = n;
      best_value = v;
      best_tail = tail;
    }
  }
  ASSERT_NE(best, kNullNet) << "no stuck target with a constant golden tail";

  Fault f;
  f.kind = best_value ? FaultKind::kStuckAt1 : FaultKind::kStuckAt0;
  f.net = best;
  f.cycle = 0;
  BatchFaultSession full(tape);
  ConeBatchSession<1> sess(tape, cone, trace);
  full.arm(0, f);
  sess.arm(0, f);
  const auto want = hw::run_stream_batch(dp->dp, full, x, 1);
  const auto got = hw::run_stream_batch(dp->dp, sess, x, 1);
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(want[0].low, got[0].low);
  EXPECT_EQ(want[0].high, got[0].high);
  EXPECT_TRUE(sess.retired());
  EXPECT_GT(sess.skipped_cycles(), 0u);
  EXPECT_LT(sess.executed_instructions(), sess.full_instructions());
}

TEST(ConeSession, RejectsLateArmAndForeignArtifacts) {
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const hw::DesignSpec spec = hw::design_spec(hw::DesignId::kDesign1);
  const auto dp = cache.design(spec.config);
  const auto tape =
      cache.tape(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const auto cone =
      cache.cone_index(spec.config, HardeningStyle::kNone, OptLevel::kSafe);
  const std::vector<std::int64_t> x = stimulus(16);
  auto trace = std::make_shared<GoldenTrace>(tape->slot_count());
  {
    BatchFaultSession clean(tape);
    clean.set_trace(trace.get());
    (void)hw::run_stream_batch(dp->dp, clean, x, 1);
  }

  ConeBatchSession<1> sess(tape, cone, trace);
  Fault f;
  f.kind = FaultKind::kStuckAt0;
  f.net = 0;
  sess.arm(0, f);
  sess.step();
  EXPECT_THROW(sess.arm(1, f), std::logic_error);

  // A session stepped past its recorded trace fails loudly, not silently.
  ConeBatchSession<1> runaway(tape, cone,
                              std::make_shared<GoldenTrace>(tape->slot_count()));
  runaway.arm(0, f);
  EXPECT_THROW(runaway.step(), std::logic_error);

  // Artifacts from a different tape are rejected up front.
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)nl.add_cell(CellKind::kNot, a);
  const auto other = compile(nl);
  EXPECT_THROW(ConeBatchSession<1>(other, cone, trace),
               std::invalid_argument);
  EXPECT_THROW(ConeBatchSession<1>(tape, ConeIndex::build(*other),
                                   std::make_shared<GoldenTrace>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::rtl::compiled
