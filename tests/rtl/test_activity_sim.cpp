#include "rtl/activity_sim.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/builder.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

TEST(ActivitySim, MatchesZeroDelaySettledValues) {
  // After settling, the unit-delay simulator must agree with the levelized
  // one on every net value.
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 6);
  const Bus bb = nl.add_input_bus("b", 6);
  const Bus s = b.add(a, bb, AdderStyle::kCarryChain, 7, "s");
  const Bus d = b.sub(a, bb, AdderStyle::kRippleGates, 7, "d");
  const Bus sr = b.reg(s, "r");
  nl.bind_output("s", sr);
  nl.bind_output("d", d);
  Simulator zd(nl);
  ActivitySim ud(nl);
  common::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::int64_t va = rng.uniform(-32, 31);
    const std::int64_t vb = rng.uniform(-32, 31);
    zd.set_bus(a, va);
    zd.set_bus(bb, vb);
    zd.step();
    ud.set_bus(a, va);
    ud.set_bus(bb, vb);
    ud.cycle();
    EXPECT_EQ(ud.read_bus(s), zd.read_bus(s));
    EXPECT_EQ(ud.read_bus(d), zd.read_bus(d));
    EXPECT_EQ(ud.read_bus(sr), zd.read_bus(sr));
  }
}

TEST(ActivitySim, CountsFunctionalToggles) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  (void)q;
  ActivitySim sim(nl);
  // Toggle the input every cycle: d toggles N times, q follows.
  for (int t = 0; t < 10; ++t) {
    sim.set_input(d, t % 2 == 0);
    sim.cycle();
  }
  EXPECT_EQ(sim.stats().cycles, 10u);
  EXPECT_GE(sim.stats().toggles[d], 9u);
  EXPECT_GE(sim.stats().toggles[q], 8u);
}

TEST(ActivitySim, QuietWhenInputsConstant) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 8);
  const Bus s = b.add(a, a, AdderStyle::kCarryChain, 9, "s");
  nl.bind_output("s", s);
  ActivitySim sim(nl);
  sim.set_bus(a, 55);
  sim.cycle();
  const std::uint64_t after_first = sim.stats().total_toggles;
  for (int t = 0; t < 5; ++t) {
    sim.set_bus(a, 55);
    sim.cycle();
  }
  EXPECT_EQ(sim.stats().total_toggles, after_first);
}

TEST(ActivitySim, GlitchesInCascadesExceedFunctionalMinimum) {
  // A deep chain of adders produces more transitions than a registered one:
  // the core physical effect behind the paper's power table.
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 8);
  Bus acc = a;
  for (int i = 0; i < 6; ++i) {
    acc = b.add(acc, b.shl(a, 1), AdderStyle::kCarryChain,
                acc.width() + 2, "s" + std::to_string(i));
  }
  nl.bind_output("y", acc);
  ActivitySim sim(nl);
  common::Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    sim.set_bus(a, rng.uniform(-128, 127));
    sim.cycle();
  }
  // Final-stage nets see more transitions than the raw inputs do.
  double in_rate = 0, out_rate = 0;
  for (const NetId n : a.bits) in_rate += sim.stats().rate(n);
  for (const NetId n : acc.bits) out_rate += sim.stats().rate(n);
  EXPECT_GT(out_rate / static_cast<double>(acc.width()),
            in_rate / static_cast<double>(a.width()));
}

TEST(ActivitySim, ResetStatsZeroes) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  (void)nl.add_cell(CellKind::kNot, d);
  ActivitySim sim(nl);
  sim.set_input(d, true);
  sim.cycle();
  EXPECT_GT(sim.stats().total_toggles, 0u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().total_toggles, 0u);
  EXPECT_EQ(sim.stats().cycles, 0u);
}

TEST(ActivitySim, SetBusValidatesRange) {
  Netlist nl;
  const Bus in = nl.add_input_bus("x", 4);
  ActivitySim sim(nl);
  EXPECT_THROW(sim.set_bus(in, 100), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::rtl
