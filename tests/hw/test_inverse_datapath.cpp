#include "hw/inverse_lifting_datapath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/dwt97_lifting_fixed.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simulator.hpp"

namespace dwt::hw {
namespace {

std::vector<std::int64_t> image_samples(std::size_t n, std::uint64_t seed) {
  const dsp::Image img = dsp::make_still_tone_image(128, (n + 127) / 128, seed);
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (const double v : img.data()) {
    if (out.size() == n) break;
    out.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return out;
}

/// The streaming harness approximates the software inverse's boundary
/// convention with edge replication, which differs on the trailing window;
/// interior outputs must match exactly.
constexpr std::size_t kTailSlack = 2;

struct Case {
  rtl::AdderStyle style;
  bool pipelined;
};

class InverseBitTrue : public ::testing::TestWithParam<Case> {};

TEST_P(InverseBitTrue, MatchesSoftwareInverse) {
  InverseDatapathConfig cfg;
  cfg.adder_style = GetParam().style;
  cfg.pipelined_operators = GetParam().pipelined;
  const BuiltInverseDatapath dp = build_inverse_lifting_datapath(cfg);
  rtl::Simulator sim(dp.netlist);

  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  const auto x = image_samples(128, 2005);
  const auto sub = dsp::lifting97_forward_fixed(x, c);
  const auto sw = dsp::lifting97_inverse_fixed(sub.low, sub.high, c);
  const InverseStreamResult hw = run_stream_inverse(dp, sim, sub.low, sub.high);
  ASSERT_EQ(hw.samples.size(), sw.size());
  for (std::size_t i = 0; i + 2 * kTailSlack < sw.size(); ++i) {
    EXPECT_EQ(hw.samples[i], sw[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Styles, InverseBitTrue,
    ::testing::Values(Case{rtl::AdderStyle::kCarryChain, false},
                      Case{rtl::AdderStyle::kCarryChain, true},
                      Case{rtl::AdderStyle::kRippleGates, false},
                      Case{rtl::AdderStyle::kRippleGates, true}));

TEST(InverseDatapath, EndToEndRoundTripThroughBothCores) {
  // Forward core -> inverse core: the full hardware transform pipeline
  // reconstructs the input to within the fixed-point round-trip error.
  const BuiltDatapath fwd = build_design(DesignId::kDesign2);
  InverseDatapathConfig icfg;
  const BuiltInverseDatapath inv = build_inverse_lifting_datapath(icfg);
  rtl::Simulator fsim(fwd.netlist);
  rtl::Simulator isim(inv.netlist);

  const auto x = image_samples(128, 31);
  const StreamResult sub = run_stream(fwd, fsim, x);
  const InverseStreamResult rec =
      run_stream_inverse(inv, isim, sub.low, sub.high);
  ASSERT_EQ(rec.samples.size(), x.size());
  for (std::size_t i = 0; i + 2 * kTailSlack < x.size(); ++i) {
    EXPECT_LE(std::abs(rec.samples[i] - x[i]), 5) << "i=" << i;
  }
}

TEST(InverseDatapath, LatencyAndPorts) {
  const BuiltInverseDatapath dp = build_inverse_lifting_datapath({});
  EXPECT_GT(dp.latency, 5);
  EXPECT_EQ(dp.in_low.width(), 10);
  EXPECT_EQ(dp.in_high.width(), 9);
  // Reconstructed samples carry the fixed-point error margin above 8 bits.
  EXPECT_GE(dp.out_even.width(), 8);
}

TEST(InverseDatapath, RejectsBadConfig) {
  InverseDatapathConfig cfg;
  cfg.low_bits = 0;
  EXPECT_THROW(build_inverse_lifting_datapath(cfg), std::invalid_argument);
  cfg = {};
  cfg.frac_bits = 0;
  EXPECT_THROW(build_inverse_lifting_datapath(cfg), std::invalid_argument);
}

TEST(InverseDatapath, NetlistValidates) {
  for (const bool pipelined : {false, true}) {
    InverseDatapathConfig cfg;
    cfg.pipelined_operators = pipelined;
    EXPECT_NO_THROW(build_inverse_lifting_datapath(cfg).netlist.validate());
  }
}

}  // namespace
}  // namespace dwt::hw
