#include "hw/lifting_datapath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/dwt97_lifting_fixed.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simulator.hpp"

namespace dwt::hw {
namespace {

std::vector<std::int64_t> image_samples(std::size_t n, std::uint64_t seed) {
  const dsp::Image img = dsp::make_still_tone_image(128, (n + 127) / 128, seed);
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (const double v : img.data()) {
    if (out.size() == n) break;
    out.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return out;
}

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> out(n);
  for (auto& v : out) v = rng.uniform(-128, 127);
  return out;
}

class AllDesignsBitTrue : public ::testing::TestWithParam<DesignId> {};

TEST_P(AllDesignsBitTrue, MatchesSoftwareModelOnImageData) {
  // Natural-image samples stay inside the paper's section-3.1 register
  // envelopes, so the paper-width hardware must match the software model
  // bit for bit.
  const BuiltDatapath dp = build_design(GetParam());
  rtl::Simulator sim(dp.netlist);
  const auto x = image_samples(128, 2005);
  const StreamResult hwres = run_stream(dp, sim, x);
  const auto swres = dsp::lifting97_forward_fixed(
      x, dsp::LiftingFixedCoeffs::rounded(8));
  ASSERT_EQ(hwres.low.size(), swres.low.size());
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    EXPECT_EQ(hwres.low[i], swres.low[i]) << "low i=" << i;
    EXPECT_EQ(hwres.high[i], swres.high[i]) << "high i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, AllDesignsBitTrue,
                         ::testing::Values(DesignId::kDesign1, DesignId::kDesign2,
                                           DesignId::kDesign3, DesignId::kDesign4,
                                           DesignId::kDesign5),
                         [](const auto& info) {
                           return design_spec(info.param).name.substr(0, 6) +
                                  std::to_string(static_cast<int>(info.param) + 1);
                         });

TEST(LiftingDatapath, IntervalWidthsAreExactOnRandomData) {
  // With interval-analysis sizing (no paper clamps), arbitrary 8-bit input
  // streams must match the software model exactly.
  DatapathConfig cfg = design_spec(DesignId::kDesign2).config;
  cfg.paper_widths = false;
  const BuiltDatapath dp = build_lifting_datapath(cfg);
  rtl::Simulator sim(dp.netlist);
  const auto x = random_samples(256, 7);
  const StreamResult hwres = run_stream(dp, sim, x);
  const auto swres =
      dsp::lifting97_forward_fixed(x, dsp::LiftingFixedCoeffs::rounded(8));
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    EXPECT_EQ(hwres.low[i], swres.low[i]) << i;
    EXPECT_EQ(hwres.high[i], swres.high[i]) << i;
  }
}

TEST(LiftingDatapath, PaperWidthsClampOnAdversarialData) {
  // The paper sizes its high-pass output register for +/-252; adversarial
  // inputs exceed that and wrap -- the price of measurement-based sizing,
  // which natural images never pay.
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  rtl::Simulator sim(dp.netlist);
  // Uncorrelated full-scale samples push the high band past +/-252.
  const auto x = random_samples(256, 7);
  const StreamResult hwres = run_stream(dp, sim, x);
  const auto swres =
      dsp::lifting97_forward_fixed(x, dsp::LiftingFixedCoeffs::rounded(8));
  bool any_wrap = false;
  for (std::size_t i = 0; i < swres.high.size(); ++i) {
    if (hwres.high[i] != swres.high[i]) any_wrap = true;
  }
  EXPECT_TRUE(any_wrap);
}

TEST(LiftingDatapath, EightStageSkeletonLatency) {
  for (const DesignId id :
       {DesignId::kDesign1, DesignId::kDesign2, DesignId::kDesign4}) {
    EXPECT_EQ(build_design(id).info.latency, 8) << design_spec(id).name;
  }
}

TEST(LiftingDatapath, PipelinedDesignsAreDeeper) {
  const int d3 = build_design(DesignId::kDesign3).info.latency;
  const int d5 = build_design(DesignId::kDesign5).info.latency;
  EXPECT_GT(d3, 20);
  EXPECT_EQ(d3, d5);  // same schedule, different adder realization
}

TEST(LiftingDatapath, StageRangesRecordPaperWidths) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  bool found_d1 = false;
  for (const StageRange& r : dp.info.stage_ranges) {
    if (r.name == "d1_after_alpha") {
      EXPECT_EQ(r.bits, 11);
      EXPECT_EQ(r.range.lo, -530);
      found_d1 = true;
    }
  }
  EXPECT_TRUE(found_d1);
}

TEST(LiftingDatapath, OutputPortWidthsMatchSection31) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  EXPECT_EQ(dp.out_low.width(), 10);   // +/-298 -> signed 10 bits
  EXPECT_EQ(dp.out_high.width(), 9);   // +/-252 -> signed 9 bits
}

TEST(LiftingDatapath, WiderInputsSupported) {
  DatapathConfig cfg;
  cfg.input_bits = 12;
  cfg.paper_widths = false;
  const BuiltDatapath dp = build_lifting_datapath(cfg);
  rtl::Simulator sim(dp.netlist);
  const auto base = random_samples(64, 9);
  std::vector<std::int64_t> x(base);
  for (auto& v : x) v *= 8;  // use the wider range
  const StreamResult hwres = run_stream(dp, sim, x);
  const auto swres =
      dsp::lifting97_forward_fixed(x, dsp::LiftingFixedCoeffs::rounded(8));
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    EXPECT_EQ(hwres.low[i], swres.low[i]) << i;
  }
}

TEST(LiftingDatapath, RejectsInvalidConfig) {
  DatapathConfig cfg;
  cfg.input_bits = 0;
  EXPECT_THROW(build_lifting_datapath(cfg), std::invalid_argument);
  cfg.input_bits = 8;
  cfg.frac_bits = 0;
  EXPECT_THROW(build_lifting_datapath(cfg), std::invalid_argument);
}

TEST(LiftingDatapath, NetlistValidates) {
  for (const DesignSpec& spec : all_designs()) {
    EXPECT_NO_THROW(build_lifting_datapath(spec.config).netlist.validate())
        << spec.name;
  }
}

TEST(LiftingDatapath, TreeStructureAblationStillBitTrue) {
  DatapathConfig cfg = design_spec(DesignId::kDesign3).config;
  cfg.sum_structure = rtl::SumStructure::kTree;
  const BuiltDatapath dp = build_lifting_datapath(cfg);
  rtl::Simulator sim(dp.netlist);
  const auto x = image_samples(128, 77);
  const StreamResult hwres = run_stream(dp, sim, x);
  const auto swres =
      dsp::lifting97_forward_fixed(x, dsp::LiftingFixedCoeffs::rounded(8));
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    EXPECT_EQ(hwres.low[i], swres.low[i]) << i;
  }
  // Trees are shallower than sequential chains.
  EXPECT_LT(dp.info.latency, build_design(DesignId::kDesign3).info.latency);
}

}  // namespace
}  // namespace dwt::hw
