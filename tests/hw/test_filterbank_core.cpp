#include "hw/filterbank_core.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"
#include "rtl/simulator.hpp"
#include "rtl/stats.hpp"

namespace dwt::hw {
namespace {

/// Streams samples into the core and collects (low, high) once per cycle.
struct StreamOut {
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
};

StreamOut run_core(const BuiltFilterBank& fb, std::span<const std::int64_t> x) {
  rtl::Simulator sim(fb.netlist);
  StreamOut out;
  for (const std::int64_t v : x) {
    sim.set_bus(fb.in_sample, v);
    sim.step();
    out.low.push_back(sim.read_bus(fb.out_low));
    out.high.push_back(sim.read_bus(fb.out_high));
  }
  return out;
}

/// Reference: straight (non-mirrored) convolution with exact accumulation
/// and a final >> frac_bits, centered at tap 4 of the 9-deep window.
std::int64_t ref_filter(std::span<const std::int64_t> x, std::ptrdiff_t center,
                        std::span<const std::int64_t> coeffs,
                        std::size_t first_tap, int frac_bits) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    // Window tap k holds the sample delayed k cycles: tap (first_tap + j)
    // corresponds to x[center_cycle - first_tap - j].
    const std::ptrdiff_t idx =
        center - static_cast<std::ptrdiff_t>(first_tap + j);
    if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(x.size())) return 0;
    acc += coeffs[j] * x[static_cast<std::size_t>(idx)];
  }
  return acc >> frac_bits;
}

TEST(FilterBankCore, MatchesReferenceConvolution) {
  FilterBankConfig cfg;
  const BuiltFilterBank fb = build_filterbank_core(cfg);
  EXPECT_EQ(fb.latency, 1);  // output register only
  common::Rng rng(3);
  std::vector<std::int64_t> x(64);
  for (auto& v : x) v = rng.uniform(-128, 127);
  const StreamOut out = run_core(fb, x);
  const auto coeffs = dsp::Dwt97FirFixedCoeffs::rounded(8);
  // Output at cycle t (post-register) reflects the window as of cycle t-1.
  for (std::ptrdiff_t t = 12; t < 64; ++t) {
    const std::ptrdiff_t window_end = t - fb.latency + 1;
    EXPECT_EQ(out.low[static_cast<std::size_t>(t)],
              ref_filter(x, window_end, coeffs.analysis_low, 0, 8))
        << t;
    EXPECT_EQ(out.high[static_cast<std::size_t>(t)],
              ref_filter(x, window_end, coeffs.analysis_high, 1, 8))
        << t;
  }
}

TEST(FilterBankCore, SixteenMultipliersUnfolded) {
  const BuiltFilterBank fb = build_filterbank_core({});
  EXPECT_EQ(fb.multiplier_blocks, 16);  // paper figure 2
}

TEST(FilterBankCore, SymmetryFoldingHalvesMultipliers) {
  FilterBankConfig cfg;
  cfg.exploit_symmetry = true;
  const BuiltFilterBank fb = build_filterbank_core(cfg);
  EXPECT_EQ(fb.multiplier_blocks, 9);  // 5 low + 4 high
}

TEST(FilterBankCore, FoldedMatchesUnfolded) {
  FilterBankConfig folded;
  folded.exploit_symmetry = true;
  const BuiltFilterBank a = build_filterbank_core({});
  const BuiltFilterBank b = build_filterbank_core(folded);
  common::Rng rng(9);
  std::vector<std::int64_t> x(48);
  for (auto& v : x) v = rng.uniform(-128, 127);
  const StreamOut ra = run_core(a, x);
  const StreamOut rb = run_core(b, x);
  for (std::size_t t = 12; t < x.size(); ++t) {
    EXPECT_EQ(ra.low[t], rb.low[t]) << t;
    EXPECT_EQ(ra.high[t], rb.high[t]) << t;
  }
}

TEST(FilterBankCore, PipelinedVariantMatchesWithLatency) {
  FilterBankConfig cfg;
  cfg.pipelined_operators = true;
  const BuiltFilterBank fb = build_filterbank_core(cfg);
  EXPECT_GT(fb.latency, 2);
  const BuiltFilterBank flat = build_filterbank_core({});
  common::Rng rng(4);
  std::vector<std::int64_t> x(64, 0);
  for (auto& v : x) v = rng.uniform(-128, 127);
  const StreamOut rp = run_core(fb, x);
  const StreamOut rf = run_core(flat, x);
  const int skew = fb.latency - flat.latency;
  for (std::size_t t = 20; t + static_cast<std::size_t>(skew) < x.size(); ++t) {
    EXPECT_EQ(rp.low[t + static_cast<std::size_t>(skew)], rf.low[t]) << t;
  }
}

TEST(FilterBankCore, ImpulseResponseRecoversCoefficients) {
  FilterBankConfig cfg;
  cfg.input_bits = 12;  // room for the scaled impulse
  const BuiltFilterBank fb = build_filterbank_core(cfg);
  std::vector<std::int64_t> x(32, 0);
  x[10] = 256;  // scaled impulse so >>8 returns the raw coefficients
  const StreamOut out = run_core(fb, x);
  const auto coeffs = dsp::Dwt97FirFixedCoeffs::rounded(8);
  // low[t] = h[j] where window_end - j = 10.
  for (std::size_t j = 0; j < 9; ++j) {
    const std::size_t t = 10 + j + static_cast<std::size_t>(fb.latency) - 1;
    EXPECT_EQ(out.low[t], coeffs.analysis_low[j]) << j;
  }
}

TEST(FilterBankCore, StructuralVariantBuildsAndMatches) {
  FilterBankConfig cfg;
  cfg.adder_style = rtl::AdderStyle::kRippleGates;
  const BuiltFilterBank fb = build_filterbank_core(cfg);
  const BuiltFilterBank ref = build_filterbank_core({});
  common::Rng rng(6);
  std::vector<std::int64_t> x(40);
  for (auto& v : x) v = rng.uniform(-128, 127);
  const StreamOut ra = run_core(fb, x);
  const StreamOut rb = run_core(ref, x);
  for (std::size_t t = 12; t < x.size(); ++t) {
    EXPECT_EQ(ra.low[t], rb.low[t]) << t;
    EXPECT_EQ(ra.high[t], rb.high[t]) << t;
  }
}

TEST(FilterBankCore, PaperBaselineConstants) {
  EXPECT_EQ(paper_baseline().area_les, 785);
  EXPECT_DOUBLE_EQ(paper_baseline().fmax_mhz, 85.5);
}

TEST(FilterBankCore, RejectsBadConfig) {
  FilterBankConfig cfg;
  cfg.input_bits = 0;
  EXPECT_THROW(build_filterbank_core(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::hw
