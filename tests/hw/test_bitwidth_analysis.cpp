#include "hw/bitwidth_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::hw {
namespace {

std::vector<std::int64_t> image_samples(std::uint64_t seed) {
  const dsp::Image img = dsp::make_still_tone_image(128, 64, seed);
  std::vector<std::int64_t> out;
  out.reserve(img.data().size());
  for (const double v : img.data()) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return out;
}

TEST(BitwidthAnalysis, IntervalBoundsContainPaperRanges) {
  const auto ivl =
      interval_stage_ranges(8, dsp::LiftingFixedCoeffs::rounded(8));
  const auto paper = paper_section31_ranges();
  ASSERT_EQ(ivl.size(), paper.size());
  for (std::size_t i = 0; i < ivl.size(); ++i) {
    EXPECT_EQ(ivl[i].name, paper[i].name);
    EXPECT_LE(ivl[i].range.lo, paper[i].range.lo) << ivl[i].name;
    EXPECT_GE(ivl[i].range.hi, paper[i].range.hi) << ivl[i].name;
  }
}

TEST(BitwidthAnalysis, IntervalWidthsCloseToPaper) {
  // Worst-case analysis costs at most 3 extra bits over the measured sizes.
  const auto ivl =
      interval_stage_ranges(8, dsp::LiftingFixedCoeffs::rounded(8));
  const auto paper = paper_section31_ranges();
  for (std::size_t i = 0; i < ivl.size(); ++i) {
    EXPECT_LE(ivl[i].bits, paper[i].bits + 3) << ivl[i].name;
  }
}

TEST(BitwidthAnalysis, ObservedRangesWithinPaperOnImages) {
  // The key claim of section 3.1: natural image data stays inside the
  // published register ranges.
  const auto comparisons = compare_stage_ranges(image_samples(2005));
  for (const StageRangeComparison& c : comparisons) {
    EXPECT_GE(c.observed.lo, c.paper.lo) << c.name;
    EXPECT_LE(c.observed.hi, c.paper.hi) << c.name;
    EXPECT_LE(c.observed_bits, c.paper_bits) << c.name;
  }
}

TEST(BitwidthAnalysis, ObservedWithinInterval) {
  // Soundness: measured values never escape the static bounds.
  common::Rng rng(3);
  std::vector<std::int64_t> x(512);
  for (auto& v : x) v = rng.uniform(-128, 127);
  const auto comparisons = compare_stage_ranges(x);
  for (const StageRangeComparison& c : comparisons) {
    EXPECT_GE(c.observed.lo, c.interval.lo) << c.name;
    EXPECT_LE(c.observed.hi, c.interval.hi) << c.name;
  }
}

TEST(BitwidthAnalysis, StageNamesComplete) {
  const auto comparisons = compare_stage_ranges(image_samples(7));
  ASSERT_EQ(comparisons.size(), 7u);
  EXPECT_EQ(comparisons[0].name, "input");
  EXPECT_EQ(comparisons[1].name, "d1_after_alpha");
  EXPECT_EQ(comparisons[6].name, "high_output");
}

TEST(BitwidthAnalysis, PaperBitsMatchSection31) {
  const auto paper = paper_section31_ranges();
  EXPECT_EQ(paper[1].bits, 11);  // after alpha
  EXPECT_EQ(paper[2].bits, 9);   // after beta
  EXPECT_EQ(paper[3].bits, 9);   // after gamma
  EXPECT_EQ(paper[4].bits, 10);  // after delta
  EXPECT_EQ(paper[5].bits, 10);  // low output
  EXPECT_EQ(paper[6].bits, 9);   // high output
}

TEST(BitwidthAnalysis, WiderInputsGrowIntervals) {
  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  const auto r8 = interval_stage_ranges(8, c);
  const auto r10 = interval_stage_ranges(10, c);
  for (std::size_t i = 0; i < r8.size(); ++i) {
    EXPECT_GE(r10[i].bits, r8[i].bits + 1) << r8[i].name;
  }
}

}  // namespace
}  // namespace dwt::hw
