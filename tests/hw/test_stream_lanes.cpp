// The compiled batched streaming surfaces against the interpreted
// run_stream reference: run_stream_batch (per-lane fault trials over one
// shared stimulus) and run_stream_lanes (chunk-per-lane activity batching).
#include "hw/stream_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/tape.hpp"

namespace dwt::hw {
namespace {

std::vector<std::int64_t> test_signal(std::size_t n) {
  const dsp::Image img = dsp::make_still_tone_image(n, 1, 11);
  std::vector<std::int64_t> x;
  x.reserve(n);
  for (const double v : img.data()) {
    x.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return x;
}

TEST(StreamBatch, FaultFreeLanesMatchInterpretedStream) {
  const BuiltDatapath dp = build_design(DesignId::kDesign3);
  const auto x = test_signal(32);
  rtl::Simulator ref(dp.netlist);
  const StreamResult golden = run_stream(dp, ref, x);

  rtl::compiled::BatchFaultSession session(
      rtl::compiled::compile(dp.netlist));
  const auto lanes = run_stream_batch(dp, session, x, /*lanes=*/8);
  ASSERT_EQ(lanes.size(), 8u);
  for (const StreamResult& lane : lanes) {
    EXPECT_EQ(lane.low, golden.low);
    EXPECT_EQ(lane.high, golden.high);
    EXPECT_EQ(lane.cycles, golden.cycles);
  }
}

TEST(StreamBatch, ArmedLaneDivergesOthersStayGolden) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  const auto x = test_signal(32);
  rtl::Simulator ref(dp.netlist);
  const StreamResult golden = run_stream(dp, ref, x);

  // Stuck-at-0 on the even input's LSB for the whole stream on lane 3 only:
  // every odd even-sample is perturbed, so the lane's transform diverges.
  rtl::Fault f;
  f.kind = rtl::FaultKind::kStuckAt0;
  f.net = dp.in_even.bits[0];
  f.cycle = 0;
  rtl::compiled::BatchFaultSession session(
      rtl::compiled::compile(dp.netlist));
  session.arm(3, f);
  const auto lanes = run_stream_batch(dp, session, x, /*lanes=*/5);
  EXPECT_EQ(lanes[0].low, golden.low);
  EXPECT_EQ(lanes[1].low, golden.low);
  EXPECT_EQ(lanes[2].low, golden.low);
  EXPECT_EQ(lanes[4].low, golden.low);
  EXPECT_NE(lanes[3].low, golden.low);  // the faulty lane
}

TEST(StreamLanes, ChunkedTransformMatchesPerChunkReference) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  const auto x = test_signal(64);  // 32 pairs -> 32 single-pair lanes
  rtl::compiled::CompiledSimulator sim(dp.netlist);
  const LaneStreamResult batch = run_stream_lanes(dp, sim, x);
  ASSERT_FALSE(batch.lanes.empty());
  EXPECT_GT(batch.cycles, 0u);

  // Each lane transformed one contiguous chunk with its own mirror
  // extension; the interpreted engine over the same chunk must agree.
  std::size_t offset = 0;
  for (const StreamResult& lane : batch.lanes) {
    const std::size_t chunk = lane.low.size() + lane.high.size();
    ASSERT_LE(offset + chunk, x.size());
    rtl::Simulator ref(dp.netlist);
    const StreamResult expect = run_stream(
        dp, ref, std::span<const std::int64_t>(x.data() + offset, chunk));
    EXPECT_EQ(lane.low, expect.low);
    EXPECT_EQ(lane.high, expect.high);
    offset += chunk;
  }
  EXPECT_EQ(offset, x.size());  // every sample landed in exactly one lane
}

TEST(StreamLanes, OddSignalKeepsFinalPartialChunk) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  const auto x = test_signal(131);  // 66 fed pairs -> uneven 3-pair chunks
  rtl::compiled::CompiledSimulator sim(dp.netlist);
  const LaneStreamResult batch = run_stream_lanes(dp, sim, x);

  std::size_t offset = 0;
  for (const StreamResult& lane : batch.lanes) {
    const std::size_t chunk = lane.low.size() + lane.high.size();
    ASSERT_LE(offset + chunk, x.size());
    rtl::Simulator ref(dp.netlist);
    const StreamResult expect = run_stream(
        dp, ref, std::span<const std::int64_t>(x.data() + offset, chunk));
    EXPECT_EQ(lane.low, expect.low) << "offset=" << offset;
    EXPECT_EQ(lane.high, expect.high) << "offset=" << offset;
    offset += chunk;
  }
  EXPECT_EQ(offset, x.size());  // the trailing odd sample was not dropped
}

TEST(StreamLanes, HarvestsActivityForPowerEstimation) {
  const BuiltDatapath dp = build_design(DesignId::kDesign2);
  const auto x = test_signal(64);
  rtl::compiled::CompiledSimulator sim(dp.netlist);
  sim.enable_activity();
  const LaneStreamResult batch = run_stream_lanes(dp, sim, x);
  (void)batch;
  const rtl::ActivityStats stats = sim.activity_stats();
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.total_toggles, 0u);
}

}  // namespace
}  // namespace dwt::hw
