#include "hw/designs.hpp"

#include <gtest/gtest.h>

#include "rtl/stats.hpp"

namespace dwt::hw {
namespace {

TEST(Designs, FiveDesignsInPaperOrder) {
  const auto specs = all_designs();
  ASSERT_EQ(specs.size(), 5u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, "Design " + std::to_string(i + 1));
    EXPECT_FALSE(specs[i].description.empty());
  }
}

TEST(Designs, ConfigurationAxesMatchPaperSection3) {
  const auto specs = all_designs();
  // Design 1: behavioral generic multipliers.
  EXPECT_EQ(specs[0].config.multiplier, MultiplierStyle::kGenericArray);
  EXPECT_EQ(specs[0].config.adder_style, rtl::AdderStyle::kCarryChain);
  EXPECT_FALSE(specs[0].config.pipelined_operators);
  // Design 2: behavioral shift-add.
  EXPECT_EQ(specs[1].config.multiplier, MultiplierStyle::kShiftAdd);
  EXPECT_FALSE(specs[1].config.pipelined_operators);
  // Design 3: behavioral pipelined shift-add.
  EXPECT_TRUE(specs[2].config.pipelined_operators);
  EXPECT_EQ(specs[2].config.adder_style, rtl::AdderStyle::kCarryChain);
  // Design 4: structural shift-add.
  EXPECT_EQ(specs[3].config.adder_style, rtl::AdderStyle::kRippleGates);
  EXPECT_FALSE(specs[3].config.pipelined_operators);
  // Design 5: structural pipelined shift-add.
  EXPECT_EQ(specs[4].config.adder_style, rtl::AdderStyle::kRippleGates);
  EXPECT_TRUE(specs[4].config.pipelined_operators);
}

TEST(Designs, SpecLookupMatchesList) {
  EXPECT_EQ(design_spec(DesignId::kDesign3).name, "Design 3");
  EXPECT_EQ(design_spec(DesignId::kDesign5).description,
            all_designs()[4].description);
}

TEST(Designs, StructuralDesignsHaveNoChains) {
  const BuiltDatapath d4 = build_design(DesignId::kDesign4);
  const rtl::NetlistStats st = rtl::compute_stats(d4.netlist);
  EXPECT_EQ(st.carry_chains, 0u);
  EXPECT_GT(st.gate_cells, 0u);
}

TEST(Designs, BehavioralDesignsUseChains) {
  const BuiltDatapath d2 = build_design(DesignId::kDesign2);
  const rtl::NetlistStats st = rtl::compute_stats(d2.netlist);
  EXPECT_GT(st.carry_chains, 20u);  // ~29 adders in the datapath
}

TEST(Designs, Design1HasPartialProductGates) {
  const BuiltDatapath d1 = build_design(DesignId::kDesign1);
  const BuiltDatapath d2 = build_design(DesignId::kDesign2);
  EXPECT_GT(d1.netlist.cell_count(), 1.5 * d2.netlist.cell_count());
}

TEST(Designs, PipelinedDesignsHaveManyMoreRegisters) {
  const auto r2 = rtl::compute_stats(build_design(DesignId::kDesign2).netlist)
                      .register_bits;
  const auto r3 = rtl::compute_stats(build_design(DesignId::kDesign3).netlist)
                      .register_bits;
  EXPECT_GT(r3, 3 * r2);
}

TEST(Designs, PaperTable3ValuesRecorded) {
  const auto rows = paper_table3();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[1].area_les, 480);
  EXPECT_DOUBLE_EQ(rows[2].fmax_mhz, 157.0);
  EXPECT_DOUBLE_EQ(rows[4].power_mw_15mhz, 91.4);
  EXPECT_EQ(rows[0].pipeline_stages, 8);
  EXPECT_EQ(rows[4].pipeline_stages, 21);
}

TEST(Designs, NameAndIndexRoundTrip) {
  for (const DesignSpec& spec : all_designs()) {
    EXPECT_EQ(design_name(spec.id), spec.name);
    EXPECT_EQ(design_index(spec.id),
              static_cast<int>(spec.id) + 1);
    ASSERT_TRUE(parse_design(spec.name).has_value());
    EXPECT_EQ(*parse_design(spec.name), spec.id);
    EXPECT_EQ(*parse_design(std::to_string(design_index(spec.id))), spec.id);
  }
}

TEST(Designs, ParseDesignAcceptsEveryToolSpelling) {
  // The spellings the CLIs, benches and registry historically each parsed
  // their own way; the shared seam must keep accepting all of them.
  for (const char* text : {"3", "design3", "Design3", "design-3", "design_3",
                           "design 3", "Design 3", "DESIGN 3"}) {
    ASSERT_TRUE(parse_design(text).has_value()) << text;
    EXPECT_EQ(*parse_design(text), DesignId::kDesign3) << text;
  }
}

TEST(Designs, ParseDesignRejectsGarbage) {
  for (const char* text :
       {"", "0", "6", "design", "design0", "design6", "3x", "design 3x",
        "desig 3", "-3", " 3", "3 "}) {
    EXPECT_FALSE(parse_design(text).has_value()) << "'" << text << "'";
  }
}

TEST(Designs, AdderVariantDesignsCrossPrefixFamily) {
  const auto variants = adder_variant_designs();
  // Designs 2..5 (Design 1 is multiplier-dominated) x the 3 prefix archs.
  ASSERT_EQ(variants.size(), 12u);
  for (const DesignSpec& spec : variants) {
    EXPECT_NE(spec.id, DesignId::kDesign1) << spec.name;
    EXPECT_TRUE(rtl::is_parallel_prefix(spec.config.adder_style)) << spec.name;
    EXPECT_EQ(spec.name, design_point_name(spec.id, spec.config.adder_style));
    EXPECT_NE(spec.description.find(rtl::adder_name(spec.config.adder_style)),
              std::string::npos)
        << spec.name;
  }
}

TEST(Designs, DesignPointNameFormatsOverride) {
  EXPECT_EQ(design_point_name(DesignId::kDesign3, std::nullopt), "Design 3");
  EXPECT_EQ(design_point_name(DesignId::kDesign3, rtl::AdderArch::kBrentKung),
            "Design 3 (brent-kung)");
  EXPECT_EQ(
      design_point_name(DesignId::kDesign5, rtl::AdderArch::kHybridKsBk),
      "Design 5 (hybrid-ksbk)");
}

TEST(Designs, DesignConfigAppliesAdderOverride) {
  const DatapathConfig base = design_config(DesignId::kDesign4);
  EXPECT_EQ(base.adder_style, rtl::AdderArch::kRippleGates);
  const DatapathConfig ks = design_config(DesignId::kDesign4, /*max_octaves=*/1,
                                          rtl::AdderArch::kKoggeStone);
  EXPECT_EQ(ks.adder_style, rtl::AdderArch::kKoggeStone);
  // The override touches only the adder axis.
  EXPECT_EQ(ks.multiplier, base.multiplier);
  EXPECT_EQ(ks.pipelined_operators, base.pipelined_operators);
}

TEST(Designs, PrefixVariantNetlistsAreChainFree) {
  const BuiltDatapath dp = build_lifting_datapath(design_config(
      DesignId::kDesign2, /*max_octaves=*/1, rtl::AdderArch::kHybridKsBk));
  const rtl::NetlistStats st = rtl::compute_stats(dp.netlist);
  EXPECT_EQ(st.carry_chains, 0u);
  EXPECT_GT(st.gate_cells, 0u);
}

TEST(Designs, DesignConfigWidensWithOctaveDepth) {
  const DatapathConfig one = design_config(DesignId::kDesign2, 1);
  const DatapathConfig three = design_config(DesignId::kDesign2, 3);
  EXPECT_GT(three.input_bits, one.input_bits);
  EXPECT_THROW((void)design_config(DesignId::kDesign2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::hw
