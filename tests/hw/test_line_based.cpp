#include "hw/line_based_dwt2d.hpp"

#include <gtest/gtest.h>

#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::hw {
namespace {

dsp::Image shifted_tile(std::size_t w, std::size_t h, std::uint64_t seed) {
  dsp::Image img = dsp::make_still_tone_image(w, h, seed);
  dsp::level_shift_forward(img);
  dsp::round_coefficients(img);
  return img;
}

class LineBasedMatchesBatch
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LineBasedMatchesBatch, BitExactOctave) {
  const auto [w, h] = GetParam();
  dsp::Image line = shifted_tile(w, h, 7);
  dsp::Image batch = line;
  (void)line_based_forward_octave(line);
  dsp::dwt2d_forward_octave(dsp::Method::kLiftingFixed, batch, w, h);
  EXPECT_EQ(line.data(), batch.data()) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LineBasedMatchesBatch,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{16, 16},
                                           std::pair<std::size_t, std::size_t>{32, 16},
                                           std::pair<std::size_t, std::size_t>{16, 32},
                                           std::pair<std::size_t, std::size_t>{64, 64},
                                           std::pair<std::size_t, std::size_t>{2, 8},
                                           std::pair<std::size_t, std::size_t>{8, 2},
                                           std::pair<std::size_t, std::size_t>{15, 16},
                                           std::pair<std::size_t, std::size_t>{16, 15},
                                           std::pair<std::size_t, std::size_t>{13, 9},
                                           std::pair<std::size_t, std::size_t>{7, 1},
                                           std::pair<std::size_t, std::size_t>{1, 7},
                                           std::pair<std::size_t, std::size_t>{1, 1}));

TEST(LineBased, MemoryFootprintIsLinesNotFrames) {
  dsp::Image img = shifted_tile(64, 64, 3);
  const LineBasedStats stats = line_based_forward_octave(img);
  EXPECT_EQ(stats.frame_memory_words, 64u * 64u);
  EXPECT_EQ(stats.line_buffer_words, 7u * 64u);
  EXPECT_LT(stats.line_buffer_words * 8, stats.frame_memory_words);
}

TEST(LineBased, RowPassCountIncludesGuards) {
  dsp::Image img = shifted_tile(16, 32, 5);
  const LineBasedStats stats = line_based_forward_octave(img);
  // (row pairs + 2 * 4 guards) * 2 rows per pair.
  EXPECT_EQ(stats.rows_processed, (32u / 2u + 8u) * 2u);
}

TEST(LineBased, RejectsEmptyPlane) {
  dsp::Image img(0, 16, 0.0);
  EXPECT_THROW(line_based_forward_octave(img), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::hw
