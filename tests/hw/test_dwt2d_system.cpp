#include "hw/dwt2d_system.hpp"

#include <gtest/gtest.h>

#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::hw {
namespace {

dsp::Image shifted_tile(std::size_t n, std::uint64_t seed) {
  dsp::Image img = dsp::make_still_tone_image(n, n, seed);
  dsp::level_shift_forward(img);
  dsp::round_coefficients(img);  // integer pixels for the integer core
  return img;
}

TEST(Dwt2dSystem, OneOctaveMatchesSoftwareTransform) {
  dsp::Image hw_plane = shifted_tile(32, 11);
  dsp::Image sw_plane = hw_plane;
  Dwt2dSystem system(DesignId::kDesign2);
  const Dwt2dRunStats stats = system.transform(hw_plane, 1);
  dsp::dwt2d_forward(dsp::Method::kLiftingFixed, sw_plane, 1);
  for (std::size_t i = 0; i < hw_plane.data().size(); ++i) {
    EXPECT_EQ(hw_plane.data()[i], sw_plane.data()[i]) << i;
  }
  EXPECT_EQ(stats.line_passes, 64u);  // 32 rows + 32 columns
  EXPECT_GT(stats.total_cycles, 32u * 32u / 2u);
}

TEST(Dwt2dSystem, MultiOctaveWithWidenedCore) {
  dsp::Image hw_plane = shifted_tile(32, 12);
  dsp::Image sw_plane = hw_plane;
  Dwt2dSystem system(DesignId::kDesign3, /*max_octaves=*/3);
  (void)system.transform(hw_plane, 3);
  dsp::dwt2d_forward(dsp::Method::kLiftingFixed, sw_plane, 3);
  for (std::size_t i = 0; i < hw_plane.data().size(); ++i) {
    EXPECT_EQ(hw_plane.data()[i], sw_plane.data()[i]) << i;
  }
}

TEST(Dwt2dSystem, CycleAccountingScalesWithImage) {
  Dwt2dSystem system(DesignId::kDesign2);
  dsp::Image small = shifted_tile(16, 1);
  dsp::Image large = shifted_tile(32, 1);
  const auto s = system.transform(small, 1);
  const auto l = system.transform(large, 1);
  EXPECT_GT(l.total_cycles, 2 * s.total_cycles);
}

TEST(Dwt2dSystem, ThroughputMetricConsistent) {
  Dwt2dRunStats stats;
  stats.total_cycles = 150000;
  EXPECT_NEAR(stats.milliseconds_at(15.0), 10.0, 1e-9);
  EXPECT_NEAR(stats.milliseconds_at(150.0), 1.0, 1e-9);
}

TEST(Dwt2dSystem, RejectsBadOctaves) {
  Dwt2dSystem system(DesignId::kDesign2);
  dsp::Image img = shifted_tile(16, 2);
  EXPECT_THROW(system.transform(img, 0), std::invalid_argument);
  dsp::Image empty(0, 18, 0.0);
  EXPECT_THROW(system.transform(empty, 1), std::invalid_argument);
}

TEST(Dwt2dSystem, OddDimensionsMatchSoftwareTransform) {
  dsp::Image hw_plane = dsp::make_still_tone_image(17, 13, 41);
  dsp::level_shift_forward(hw_plane);
  dsp::round_coefficients(hw_plane);
  dsp::Image sw_plane = hw_plane;
  Dwt2dSystem system(DesignId::kDesign2, /*max_octaves=*/2);
  (void)system.transform(hw_plane, 2);
  dsp::dwt2d_forward(dsp::Method::kLiftingFixed, sw_plane, 2);
  for (std::size_t i = 0; i < hw_plane.data().size(); ++i) {
    EXPECT_EQ(hw_plane.data()[i], sw_plane.data()[i]) << i;
  }
}

TEST(Dwt2dSystem, PipelinedCoreSameResultDifferentLatency) {
  dsp::Image a = shifted_tile(16, 5);
  dsp::Image b = a;
  Dwt2dSystem d2(DesignId::kDesign2);
  Dwt2dSystem d5(DesignId::kDesign5);
  (void)d2.transform(a, 1);
  const auto stats5 = d5.transform(b, 1);
  EXPECT_EQ(a.data(), b.data());
  // The deeper pipeline flushes more cycles per line.
  EXPECT_GT(stats5.total_cycles, 0u);
}

}  // namespace
}  // namespace dwt::hw
