#include "hw/lifting53_datapath.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/dwt53.hpp"
#include "fpga/tech_mapper.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simplify.hpp"
#include "rtl/simulator.hpp"

namespace dwt::hw {
namespace {

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> x(n);
  for (auto& v : x) v = rng.uniform(-128, 127);
  return x;
}

struct Case {
  rtl::AdderStyle style;
  bool pipelined;
};

class Lifting53BitTrue : public ::testing::TestWithParam<Case> {};

TEST_P(Lifting53BitTrue, MatchesSoftwareOnRandomData) {
  // The 5/3 core is sized by interval analysis (no measurement clamps), so
  // arbitrary 8-bit data must reproduce the software model bit for bit.
  Datapath53Config cfg;
  cfg.adder_style = GetParam().style;
  cfg.pipelined_operators = GetParam().pipelined;
  const BuiltDatapath53 dp = build_lifting53_datapath(cfg);
  rtl::Simulator sim(dp.netlist);
  const auto x = random_samples(256, 5);
  const StreamResult hwres = run_stream53(dp, sim, x);
  const dsp::LiftSubbands53 swres = dsp::lifting53_forward(x);
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    EXPECT_EQ(hwres.low[i], swres.low[i]) << "low " << i;
    EXPECT_EQ(hwres.high[i], swres.high[i]) << "high " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Styles, Lifting53BitTrue,
    ::testing::Values(Case{rtl::AdderStyle::kCarryChain, false},
                      Case{rtl::AdderStyle::kCarryChain, true},
                      Case{rtl::AdderStyle::kRippleGates, false},
                      Case{rtl::AdderStyle::kRippleGates, true}));

TEST(Lifting53, MuchSmallerThanNineSeven) {
  // Two shift-add lifting steps against the 9/7's six multiplier blocks:
  // the combined-architecture motivation of reference [6].
  Datapath53Config cfg53;
  const auto m53 =
      fpga::map_to_apex(rtl::simplify(build_lifting53_datapath(cfg53).netlist));
  const auto m97 = fpga::map_to_apex(
      rtl::simplify(build_design(DesignId::kDesign2).netlist));
  EXPECT_LT(m53.le_count() * 3, m97.le_count());
}

TEST(Lifting53, LatencyShallow) {
  Datapath53Config cfg;
  const BuiltDatapath53 flat = build_lifting53_datapath(cfg);
  EXPECT_LE(flat.latency, 6);
  cfg.pipelined_operators = true;
  const BuiltDatapath53 piped = build_lifting53_datapath(cfg);
  EXPECT_GT(piped.latency, flat.latency - 1);
}

TEST(Lifting53, RejectsBadConfig) {
  Datapath53Config cfg;
  cfg.input_bits = 0;
  EXPECT_THROW(build_lifting53_datapath(cfg), std::invalid_argument);
}

TEST(Lifting53, NetlistValidates) {
  for (const bool pipelined : {false, true}) {
    Datapath53Config cfg;
    cfg.pipelined_operators = pipelined;
    EXPECT_NO_THROW(build_lifting53_datapath(cfg).netlist.validate());
  }
}

}  // namespace
}  // namespace dwt::hw
