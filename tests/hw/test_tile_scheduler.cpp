#include "hw/tile_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::hw {
namespace {

dsp::Image shifted_image(std::size_t w, std::size_t h, std::uint64_t seed) {
  dsp::Image img = dsp::make_still_tone_image(w, h, seed);
  dsp::level_shift_forward(img);
  dsp::round_coefficients(img);
  return img;
}

TEST(TileGrid, CoversImageExactlyOnce) {
  const auto tiles = tile_grid(129, 97, 64, 64);
  ASSERT_EQ(tiles.size(), 6u);  // 3 columns (64+64+1) x 2 rows (64+33)
  std::vector<int> hits(129 * 97, 0);
  for (const TileRect& t : tiles) {
    EXPECT_GE(t.w, 1u);
    EXPECT_GE(t.h, 1u);
    for (std::size_t y = 0; y < t.h; ++y) {
      for (std::size_t x = 0; x < t.w; ++x) {
        ++hits[(t.y0 + y) * 129 + (t.x0 + x)];
      }
    }
  }
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(TileGrid, RejectsZeroDimensions) {
  EXPECT_THROW(tile_grid(0, 8, 4, 4), std::invalid_argument);
  EXPECT_THROW(tile_grid(8, 8, 0, 4), std::invalid_argument);
}

TEST(TileScheduler, DeterministicAcrossThreadCounts) {
  const dsp::Image source = shifted_image(129, 97, 5);
  TileOptions opt;
  opt.octaves = 2;

  opt.threads = 1;
  dsp::Image one = source;
  const TileStats s1 = tile_forward(one, opt);
  EXPECT_EQ(s1.tiles, 6u);
  EXPECT_EQ(s1.threads_used, 1u);

  for (const unsigned threads : {2u, 8u}) {
    opt.threads = threads;
    dsp::Image many = source;
    const TileStats s = tile_forward(many, opt);
    EXPECT_EQ(s.tiles, s1.tiles);
    EXPECT_EQ(many.data(), one.data()) << "threads=" << threads;
  }
}

TEST(TileScheduler, SingleTileMatchesPlainTransform) {
  // A tile covering the whole image degenerates to the plain 2-D transform.
  const dsp::Image source = shifted_image(33, 21, 7);
  TileOptions opt;
  opt.tile_w = 64;
  opt.tile_h = 64;
  opt.octaves = 2;
  dsp::Image tiled = source;
  (void)tile_forward(tiled, opt);
  dsp::Image plain = source;
  dsp::dwt2d_forward(dsp::Method::kLiftingFixed, plain, 2);
  EXPECT_EQ(tiled.data(), plain.data());
}

TEST(TileScheduler, OddTilesRoundTripLossless53) {
  // 5/3 is reversible, so tiling with odd image and odd tile sizes must
  // reconstruct exactly.
  const dsp::Image source = shifted_image(45, 31, 9);
  TileOptions opt;
  opt.tile_w = 17;
  opt.tile_h = 13;
  opt.octaves = 3;
  opt.method = dsp::Method::kReversible53;
  dsp::Image plane = source;
  (void)tile_forward(plane, opt);
  EXPECT_NE(plane.data(), source.data());  // something happened
  (void)tile_inverse(plane, opt);
  EXPECT_EQ(plane.data(), source.data());  // bit exact
}

TEST(TileScheduler, HardwareBackendMatchesSoftwareFixedPoint) {
  const dsp::Image source = shifted_image(37, 29, 11);
  TileOptions opt;
  opt.tile_w = 16;
  opt.tile_h = 16;
  opt.octaves = 2;
  opt.backend = core::find_backend("rtl-interpreted");
  ASSERT_NE(opt.backend, nullptr);
  opt.threads = 2;
  dsp::Image hw_plane = source;
  const TileStats stats = tile_forward(hw_plane, opt);
  EXPECT_GT(stats.total_cycles, 0u);
  EXPECT_GT(stats.line_passes, 0u);

  opt.backend = nullptr;
  dsp::Image sw_plane = source;
  (void)tile_forward(sw_plane, opt);
  EXPECT_EQ(hw_plane.data(), sw_plane.data());
}

TEST(TileScheduler, RegistryBackendsAgreeOnTiles) {
  // Every 2-D-capable bit-exact registry backend must tile identically to
  // the in-thread software fixed-point path (which `backend == nullptr`
  // runs), cycle accounting aside.
  const dsp::Image source = shifted_image(23, 19, 17);
  TileOptions opt;
  opt.tile_w = 8;
  opt.tile_h = 8;
  opt.octaves = 2;
  opt.threads = 2;
  dsp::Image reference = source;
  (void)tile_forward(reference, opt);
  for (const core::ExecutionBackend* backend : core::all_backends()) {
    const core::BackendCaps caps = backend->caps();
    if (!caps.forward_2d || !caps.bit_exact) continue;
    opt.backend = backend;
    dsp::Image plane = source;
    const TileStats stats = tile_forward(plane, opt);
    EXPECT_EQ(plane.data(), reference.data()) << backend->name();
    if (caps.cycle_accurate) {
      EXPECT_GT(stats.total_cycles, 0u) << backend->name();
    }
  }
}

TEST(TileScheduler, RejectsBadOptions) {
  dsp::Image img = shifted_image(16, 16, 13);
  TileOptions opt;
  opt.octaves = 0;
  EXPECT_THROW(tile_forward(img, opt), std::invalid_argument);
  opt = TileOptions{};
  opt.tile_w = 0;
  EXPECT_THROW(tile_forward(img, opt), std::invalid_argument);
  opt = TileOptions{};
  opt.backend = core::find_backend("rtl-interpreted");
  opt.method = dsp::Method::kReversible53;
  EXPECT_THROW(tile_forward(img, opt), std::invalid_argument);
  opt = TileOptions{};
  opt.backend = core::find_backend("rtl-interpreted");
  EXPECT_THROW(tile_inverse(img, opt), std::invalid_argument);
  opt = TileOptions{};
  opt.backend = core::find_backend("fpga-mapped");  // 1-D only: no 2-D caps
  EXPECT_THROW(tile_forward(img, opt), std::invalid_argument);
  dsp::Image empty;
  opt = TileOptions{};
  EXPECT_THROW(tile_forward(empty, opt), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::hw
