// DwtServer end-to-end: framed requests over real sockets against a live
// worker pool.  The byte-identity tests recompute the `dwt97cli tile`
// pipeline in-process (tile output is byte-identical at every thread
// count, so the single-threaded reference is the CLI's answer) and require
// the server to return exactly those bytes at 1, 2 and 8 workers under a
// concurrent mixed-design load; the admission-control tests use the
// start_paused hook to make queue-full and drain rejection deterministic.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image.hpp"
#include "dsp/image_gen.hpp"
#include "hw/tile_scheduler.hpp"
#include "server/protocol.hpp"

namespace dwt::server {
namespace {

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::uint8_t len[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    len[i] = static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF);
  }
  if (::send(fd, len, 4, MSG_NOSIGNAL) != 4) return false;
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t put =
        ::send(fd, payload.data() + off, payload.size() - off, MSG_NOSIGNAL);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

bool recv_frame(int fd, std::vector<std::uint8_t>* out) {
  std::uint8_t len[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t r = ::recv(fd, len + got, 4 - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
  if (n == 0 || n > kMaxFrameBytes) return false;
  out->resize(n);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, out->data() + off, n - off, 0);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

Response exchange(int fd, const Request& req) {
  EXPECT_TRUE(send_frame(fd, encode_request(req)));
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(recv_frame(fd, &frame));
  std::string error;
  const auto resp = decode_response(frame.data(), frame.size(), &error);
  EXPECT_TRUE(resp.has_value()) << error;
  return resp.value_or(Response{});
}

std::vector<std::uint8_t> pgm_bytes(const dsp::Image& img) {
  std::ostringstream out;
  dsp::write_pgm(img, out, "test image");
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

/// The exact `dwt97cli tile` pipeline, computed in-process.
std::vector<std::uint8_t> cli_tile_bytes(const dsp::Image& input,
                                         const std::string& backend,
                                         hw::DesignId design, int octaves) {
  dsp::Image img = input;
  hw::TileOptions opt;
  opt.method = dsp::Method::kLiftingFixed;
  opt.octaves = octaves;
  opt.threads = 1;
  opt.backend = backend.empty() ? nullptr : core::find_backend(backend);
  opt.design = design;
  if (!backend.empty()) EXPECT_NE(opt.backend, nullptr) << backend;
  dsp::level_shift_forward(img);
  dsp::round_coefficients(img);
  (void)hw::tile_forward(img, opt);
  hw::TileOptions inv = opt;
  if (inv.backend != nullptr && !inv.backend->caps().inverse_2d) {
    inv.backend = nullptr;
  }
  (void)hw::tile_inverse(img, inv);
  dsp::level_shift_inverse(img);
  return pgm_bytes(img);
}

Request tile_request(const dsp::Image& img, const std::string& backend,
                     hw::DesignId design, int octaves) {
  Request req;
  req.op = Op::kTileRoundTrip;
  req.format = PayloadFormat::kPgm;
  req.design = design;
  req.octaves = octaves;
  req.backend = backend;
  req.payload = pgm_bytes(img);
  return req;
}

TEST(DwtServer, MixedDesignResponsesByteIdenticalAtEveryWorkerCount) {
  const dsp::Image even = dsp::make_still_tone_image(96, 64, 3);
  const dsp::Image odd = dsp::make_still_tone_image(33, 17, 9);
  struct Case {
    const dsp::Image* img;
    std::string backend;
    hw::DesignId design;
    int octaves;
  };
  const std::vector<Case> cases = {
      {&even, "", hw::DesignId::kDesign2, 2},
      {&odd, "", hw::DesignId::kDesign2, 1},
      {&even, "software-fixed", hw::DesignId::kDesign1, 2},
      {&even, "rtl-compiled", hw::DesignId::kDesign2, 2},
      {&odd, "rtl-compiled", hw::DesignId::kDesign3, 2},
      {&even, "rtl-compiled", hw::DesignId::kDesign3, 3},
  };
  std::vector<std::vector<std::uint8_t>> expected;
  expected.reserve(cases.size());
  for (const Case& c : cases) {
    expected.push_back(cli_tile_bytes(*c.img, c.backend, c.design, c.octaves));
  }

  for (const unsigned workers : {1u, 2u, 8u}) {
    ServerOptions opt;
    opt.workers = workers;
    opt.queue_depth = 64;
    DwtServer server(opt);
    server.start();
    // Every case in flight at once, on its own connection.
    std::vector<std::thread> clients;
    std::vector<std::vector<std::uint8_t>> got(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      clients.emplace_back([&, i] {
        const int fd = connect_tcp(server.port());
        const Response resp =
            exchange(fd, tile_request(*cases[i].img, cases[i].backend,
                                      cases[i].design, cases[i].octaves));
        EXPECT_EQ(resp.status, Status::kOk) << response_message(resp);
        got[i] = resp.payload;
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "case " << i << " at " << workers
                                     << " workers";
    }
    const MetricsSnapshot m = server.metrics();
    EXPECT_EQ(m.requests_ok, cases.size());
    EXPECT_EQ(m.requests_error, 0u);
    server.stop();
  }
}

TEST(DwtServer, MalformedFramesGetStructuredErrorsWithoutDroppingConnection) {
  ServerOptions opt;
  opt.workers = 1;
  DwtServer server(opt);
  server.start();
  const int fd = connect_tcp(server.port());

  // Unparseable request (bad protocol version): structured kBadFrame
  // answer, connection stays usable.
  const std::vector<std::uint8_t> bad = {99, 1, 1, 2, 2, 2, 0, 0, 0, 0, 0, 0,
                                         0};
  ASSERT_TRUE(send_frame(fd, bad));
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(recv_frame(fd, &frame));
  std::string error;
  auto resp = decode_response(frame.data(), frame.size(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, Status::kBadFrame);
  EXPECT_FALSE(response_message(*resp).empty());

  // Well-formed frame, invalid content (truncated PGM): kBadRequest via the
  // hardened read_pgm validation, connection still usable.
  Request truncated;
  truncated.op = Op::kTileRoundTrip;
  truncated.format = PayloadFormat::kPgm;
  const std::string header = "P5\n64 64\n255\n";
  truncated.payload.assign(header.begin(), header.end());
  Response r = exchange(fd, truncated);
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_NE(response_message(r).find("truncated"), std::string::npos);

  // Unknown backend name: kBadRequest, connection still usable.
  const dsp::Image img = dsp::make_still_tone_image(16, 16, 1);
  Request unknown = tile_request(img, "no-such-engine",
                                 hw::DesignId::kDesign2, 1);
  r = exchange(fd, unknown);
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_NE(response_message(r).find("unknown backend"), std::string::npos);

  // The same connection then serves a valid request.
  r = exchange(fd, tile_request(img, "", hw::DesignId::kDesign2, 1));
  EXPECT_EQ(r.status, Status::kOk);

  // A hostile length prefix (beyond kMaxFrameBytes) is answered before the
  // connection closes.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t len[4];
  for (int i = 0; i < 4; ++i) {
    len[i] = static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF);
  }
  ASSERT_EQ(::send(fd, len, 4, MSG_NOSIGNAL), 4);
  ASSERT_TRUE(recv_frame(fd, &frame));
  resp = decode_response(frame.data(), frame.size(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, Status::kBadFrame);
  ::close(fd);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.protocol_errors, 2u);
  EXPECT_EQ(m.requests_error, 2u);
  EXPECT_EQ(m.requests_ok, 1u);
  server.stop();
}

TEST(DwtServer, QueueFullRejectionIsDeterministic) {
  ServerOptions opt;
  opt.workers = 1;
  opt.queue_depth = 1;
  opt.start_paused = true;  // freeze the pool so the queue cannot drain
  DwtServer server(opt);
  server.start();
  const dsp::Image img = dsp::make_still_tone_image(16, 16, 2);
  const Request req = tile_request(img, "", hw::DesignId::kDesign2, 1);

  const int first = connect_tcp(server.port());
  ASSERT_TRUE(send_frame(first, encode_request(req)));
  while (server.queue_size() < 1) {
    std::this_thread::yield();
  }

  // The queue (depth 1) is now full and the pool is frozen: the second
  // request is rejected with kQueueFull, deterministically.
  const int second = connect_tcp(server.port());
  const Response rejected = exchange(second, req);
  EXPECT_EQ(rejected.status, Status::kQueueFull);
  ::close(second);

  server.set_paused(false);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(recv_frame(first, &frame));
  std::string error;
  const auto resp = decode_response(frame.data(), frame.size(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, Status::kOk);
  ::close(first);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.rejected_queue_full, 1u);
  EXPECT_EQ(m.requests_ok, 1u);
  server.stop();
}

TEST(DwtServer, GracefulDrainFinishesQueuedWorkAndRejectsNew) {
  ServerOptions opt;
  opt.workers = 2;
  opt.queue_depth = 8;
  opt.start_paused = true;
  DwtServer server(opt);
  server.start();
  const dsp::Image img = dsp::make_still_tone_image(16, 16, 5);
  const Request req = tile_request(img, "", hw::DesignId::kDesign2, 1);

  const int queued = connect_tcp(server.port());
  ASSERT_TRUE(send_frame(queued, encode_request(req)));
  while (server.queue_size() < 1) {
    std::this_thread::yield();
  }

  server.begin_drain();
  EXPECT_TRUE(server.shutdown_requested());

  // Post-drain arrivals are answered with kShuttingDown, not dropped.
  const int late = connect_tcp(server.port());
  const Response rejected = exchange(late, req);
  EXPECT_EQ(rejected.status, Status::kShuttingDown);
  ::close(late);

  // The queued request still completes once the pool thaws.
  server.set_paused(false);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(recv_frame(queued, &frame));
  std::string error;
  const auto resp = decode_response(frame.data(), frame.size(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, Status::kOk);
  ::close(queued);

  server.stop();
  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.rejected_shutting_down, 1u);
  EXPECT_EQ(m.requests_ok, 1u);
}

TEST(DwtServer, MetricsAndShutdownOpsServeOverUnixSocket) {
  ServerOptions opt;
  opt.workers = 1;
  opt.unix_socket_path = testing::TempDir() + "dwt97d_test.sock";
  DwtServer server(opt);
  server.start();
  const int fd = connect_unix(opt.unix_socket_path);

  const dsp::Image img = dsp::make_still_tone_image(16, 16, 8);
  Response r = exchange(fd, tile_request(img, "", hw::DesignId::kDesign2, 1));
  EXPECT_EQ(r.status, Status::kOk);

  Request metrics;
  metrics.op = Op::kMetrics;
  r = exchange(fd, metrics);
  ASSERT_EQ(r.status, Status::kOk);
  const std::string json = response_message(r);
  EXPECT_NE(json.find("\"bench\": \"dwt97d_metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"requests_ok\", \"value\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("latency_p50_us"), std::string::npos);
  EXPECT_NE(json.find("cache_hit_rate"), std::string::npos);

  Request shutdown;
  shutdown.op = Op::kShutdown;
  r = exchange(fd, shutdown);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(server.shutdown_requested());
  ::close(fd);
  server.stop();
  // The socket file is removed on stop.
  EXPECT_NE(::access(opt.unix_socket_path.c_str(), F_OK), 0);
}

TEST(DwtServer, ExecuteRequestMatchesOpContracts) {
  const dsp::Image img = dsp::make_still_tone_image(24, 18, 4);
  // Forward returns one i32 LE per pixel.
  Request fwd = tile_request(img, "", hw::DesignId::kDesign2, 1);
  fwd.op = Op::kForward;
  const Response f = execute_request(fwd);
  ASSERT_EQ(f.status, Status::kOk);
  EXPECT_EQ(f.width, 24u);
  EXPECT_EQ(f.height, 18u);
  EXPECT_EQ(f.payload.size(), 24u * 18u * 4u);

  // Compress returns a codec bitstream that decodes to the input shape.
  Request comp = tile_request(img, "", hw::DesignId::kDesign2, 2);
  comp.op = Op::kCompress;
  const Response c = execute_request(comp);
  ASSERT_EQ(c.status, Status::kOk);
  EXPECT_FALSE(c.payload.empty());

  // Raw8 payloads round-trip like PGM ones.
  Request raw = tile_request(img, "", hw::DesignId::kDesign2, 1);
  raw.format = PayloadFormat::kRaw8;
  raw.width = static_cast<std::uint16_t>(img.width());
  raw.height = static_cast<std::uint16_t>(img.height());
  raw.payload.resize(img.data().size());
  for (std::size_t i = 0; i < raw.payload.size(); ++i) {
    raw.payload[i] = static_cast<std::uint8_t>(
        std::clamp(std::round(img.data()[i]), 0.0, 255.0));
  }
  const Response r = execute_request(raw);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.payload, cli_tile_bytes(img, "", hw::DesignId::kDesign2, 1));

  // Control ops are not transform requests.
  Request metrics;
  metrics.op = Op::kMetrics;
  EXPECT_EQ(execute_request(metrics).status, Status::kBadRequest);
}

}  // namespace
}  // namespace dwt::server
