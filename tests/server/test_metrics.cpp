// ServerMetrics latency histogram: the log-bucketed percentile estimator
// behind dwt97d's p50/p99 records.  percentile_locked is private, so every
// expectation drives it through record_ok() + snapshot(); the bucket
// geometry (bucket b = latencies of bit width b, interpolated linearly
// across [2^(b-1), 2^b - 1]) makes the expected values exact doubles.
#include <gtest/gtest.h>

#include <cstdint>

#include "server/metrics.hpp"

namespace dwt::server {
namespace {

TEST(ServerMetrics, EmptyHistogramReportsZeroPercentiles) {
  const ServerMetrics m;
  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.latency_p50_us, 0.0);
  EXPECT_EQ(s.latency_p99_us, 0.0);
  EXPECT_EQ(s.latency_mean_us, 0.0);
  EXPECT_EQ(s.requests_ok, 0u);
}

TEST(ServerMetrics, SingleSampleInterpolatesAcrossItsBucket) {
  // 64 us has bit width 7, so it lands in bucket [64, 127].  One sample,
  // p50 targets rank 0.5 -> midpoint of the bucket: 64 + 0.5 * 63 = 95.5.
  ServerMetrics m;
  m.record_ok("default", 64);
  const MetricsSnapshot s = m.snapshot();
  EXPECT_DOUBLE_EQ(s.latency_p50_us, 95.5);
  EXPECT_DOUBLE_EQ(s.latency_p99_us, 64.0 + 0.99 * 63.0);
  EXPECT_DOUBLE_EQ(s.latency_mean_us, 64.0);  // mean is exact, not bucketed
}

TEST(ServerMetrics, ZeroLatencySamplesStayInBucketZero) {
  ServerMetrics m;
  for (int i = 0; i < 10; ++i) m.record_ok("default", 0);
  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.latency_p50_us, 0.0);
  EXPECT_EQ(s.latency_p99_us, 0.0);
}

TEST(ServerMetrics, P50NeverExceedsP99) {
  ServerMetrics m;
  // A spread across several buckets: mostly fast, a slow tail.
  for (int i = 0; i < 90; ++i) m.record_ok("default", 100);
  for (int i = 0; i < 9; ++i) m.record_ok("default", 3000);
  m.record_ok("default", 200000);
  const MetricsSnapshot s = m.snapshot();
  EXPECT_LE(s.latency_p50_us, s.latency_p99_us);
  // p50 sits in the 100 us bucket [64, 127], p99 in the tail.
  EXPECT_GE(s.latency_p50_us, 64.0);
  EXPECT_LE(s.latency_p50_us, 127.0);
  EXPECT_GE(s.latency_p99_us, 2048.0);
}

TEST(ServerMetrics, PowerOfTwoBucketBoundaries) {
  // 64 and 127 share bucket 7, so histograms built from either are
  // indistinguishable; 128 starts bucket 8 and must not be.
  ServerMetrics lo;
  ServerMetrics hi;
  ServerMetrics next;
  for (int i = 0; i < 5; ++i) {
    lo.record_ok("default", 64);
    hi.record_ok("default", 127);
    next.record_ok("default", 128);
  }
  EXPECT_DOUBLE_EQ(lo.snapshot().latency_p50_us, hi.snapshot().latency_p50_us);
  EXPECT_GT(next.snapshot().latency_p50_us, hi.snapshot().latency_p50_us);
  // Bucket 8 spans [128, 255]; its midpoint interpolation stays inside.
  EXPECT_GE(next.snapshot().latency_p50_us, 128.0);
  EXPECT_LE(next.snapshot().latency_p50_us, 255.0);
}

TEST(ServerMetrics, SnapshotAggregatesCounters) {
  ServerMetrics m;
  m.record_ok("rtl-compiled", 10);
  m.record_ok("rtl-compiled", 20);
  m.record_ok("default", 30);
  m.record_error();
  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.requests_ok, 3u);
  EXPECT_EQ(s.requests_error, 1u);
  EXPECT_EQ(s.requests_total, 4u);
  EXPECT_DOUBLE_EQ(s.latency_mean_us, 20.0);
  EXPECT_EQ(s.backend_requests.at("rtl-compiled"), 2u);
  EXPECT_EQ(s.backend_requests.at("default"), 1u);
}

}  // namespace
}  // namespace dwt::server
