#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dwt::server {
namespace {

Request sample_request() {
  Request req;
  req.op = Op::kForward;
  req.format = PayloadFormat::kRaw8;
  req.design = hw::DesignId::kDesign4;
  req.opt_level = rtl::compiled::OptLevel::kSafe;
  req.octaves = 3;
  req.tile = 32;
  req.width = 5;
  req.height = 3;
  req.backend = "rtl-compiled";
  req.payload.assign(15, 0x42);
  return req;
}

TEST(ServerProtocol, RequestRoundTripsThroughEncodeDecode) {
  const Request req = sample_request();
  const std::vector<std::uint8_t> frame = encode_request(req);
  std::string error;
  const auto got = decode_request(frame.data(), frame.size(), &error);
  ASSERT_TRUE(got.has_value()) << error;
  EXPECT_EQ(got->op, req.op);
  EXPECT_EQ(got->format, req.format);
  EXPECT_EQ(got->design, req.design);
  EXPECT_EQ(got->opt_level, req.opt_level);
  EXPECT_EQ(got->octaves, req.octaves);
  EXPECT_EQ(got->tile, req.tile);
  EXPECT_EQ(got->width, req.width);
  EXPECT_EQ(got->height, req.height);
  EXPECT_EQ(got->backend, req.backend);
  EXPECT_EQ(got->payload, req.payload);
}

TEST(ServerProtocol, ResponseRoundTripsThroughEncodeDecode) {
  Response resp;
  resp.status = Status::kOk;
  resp.op = Op::kTileRoundTrip;
  resp.width = 640;
  resp.height = 480;
  resp.payload = {1, 2, 3, 4};
  const std::vector<std::uint8_t> frame = encode_response(resp);
  std::string error;
  const auto got = decode_response(frame.data(), frame.size(), &error);
  ASSERT_TRUE(got.has_value()) << error;
  EXPECT_EQ(got->status, Status::kOk);
  EXPECT_EQ(got->op, resp.op);
  EXPECT_EQ(got->width, resp.width);
  EXPECT_EQ(got->height, resp.height);
  EXPECT_EQ(got->payload, resp.payload);

  const Response err = error_response(Status::kQueueFull, "try later");
  const std::vector<std::uint8_t> eframe = encode_response(err);
  const auto egot = decode_response(eframe.data(), eframe.size(), &error);
  ASSERT_TRUE(egot.has_value()) << error;
  EXPECT_EQ(egot->status, Status::kQueueFull);
  EXPECT_EQ(response_message(*egot), "try later");
}

TEST(ServerProtocol, RejectsTruncatedAndCorruptRequestFrames) {
  const std::vector<std::uint8_t> frame = encode_request(sample_request());
  std::string error;

  // Truncations anywhere inside the fixed header fail cleanly; truncation
  // inside the backend name is caught by the declared length.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{5},
                                 std::size_t{12}, std::size_t{14}}) {
    EXPECT_FALSE(decode_request(frame.data(), keep, &error).has_value())
        << "kept " << keep << " bytes";
    EXPECT_FALSE(error.empty());
  }

  const auto corrupt = [&frame, &error](std::size_t at, std::uint8_t v) {
    std::vector<std::uint8_t> bad = frame;
    bad[at] = v;
    return decode_request(bad.data(), bad.size(), &error).has_value();
  };
  EXPECT_FALSE(corrupt(0, 99));    // wrong protocol version
  EXPECT_FALSE(corrupt(1, 0));     // op below range
  EXPECT_FALSE(corrupt(1, 200));   // op above range
  EXPECT_FALSE(corrupt(2, 7));     // unknown payload format
  EXPECT_FALSE(corrupt(3, 0));     // design 0
  EXPECT_FALSE(corrupt(3, 6));     // design 6
  EXPECT_FALSE(corrupt(4, 3));     // opt level 3
  EXPECT_FALSE(corrupt(5, 0));     // zero octaves
  EXPECT_FALSE(corrupt(5, 17));    // octaves above cap
}

TEST(ServerProtocol, RejectsRawPayloadSizeMismatch) {
  Request req = sample_request();
  req.payload.pop_back();  // 14 bytes for a 5x3 raw tile
  const std::vector<std::uint8_t> frame = encode_request(req);
  std::string error;
  EXPECT_FALSE(decode_request(frame.data(), frame.size(), &error).has_value());
  EXPECT_NE(error.find("width * height"), std::string::npos);

  req = sample_request();
  req.width = 0;
  req.payload.clear();
  const std::vector<std::uint8_t> zframe = encode_request(req);
  EXPECT_FALSE(
      decode_request(zframe.data(), zframe.size(), &error).has_value());
}

TEST(ServerProtocol, RejectsCorruptResponseFrames) {
  Response resp;
  resp.status = Status::kOk;
  resp.op = Op::kMetrics;
  const std::vector<std::uint8_t> frame = encode_response(resp);
  std::string error;
  EXPECT_FALSE(decode_response(frame.data(), 1, &error).has_value());
  EXPECT_FALSE(decode_response(frame.data(), 4, &error).has_value());
  std::vector<std::uint8_t> bad = frame;
  bad[0] = 99;  // version
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &error).has_value());
  bad = frame;
  bad[1] = 200;  // status
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &error).has_value());
}

TEST(ServerProtocol, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(Status::kOk), "ok");
  EXPECT_STREQ(to_string(Status::kBadFrame), "bad-frame");
  EXPECT_STREQ(to_string(Status::kBadRequest), "bad-request");
  EXPECT_STREQ(to_string(Status::kQueueFull), "queue-full");
  EXPECT_STREQ(to_string(Status::kShuttingDown), "shutting-down");
  EXPECT_STREQ(to_string(Status::kInternalError), "internal-error");
}

}  // namespace
}  // namespace dwt::server
