#include "codec/bitstream.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dwt::codec {
namespace {

TEST(Bitstream, SingleBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  BitReader r(w.finish());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());  // zero padding
}

TEST(Bitstream, MultiBitValuesMsbFirst) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bits(0xFF, 8);
  BitReader r(w.finish());
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bits(8), 0xFFu);
}

TEST(Bitstream, ByteBoundaryAlignment) {
  BitWriter w;
  w.write_bits(0xABCD, 16);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0xCD);
}

TEST(Bitstream, BitCountTracksWrites) {
  BitWriter w;
  w.write_bits(0, 5);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 6u);
}

TEST(Bitstream, RandomRoundTrip) {
  common::Rng rng(9);
  std::vector<std::pair<std::uint64_t, int>> items;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int count = static_cast<int>(rng.uniform(1, 32));
    const std::uint64_t value =
        static_cast<std::uint64_t>(rng.next_u64()) &
        ((std::uint64_t{1} << count) - 1);
    items.emplace_back(value, count);
    w.write_bits(value, count);
  }
  BitReader r(w.finish());
  for (const auto& [value, count] : items) {
    EXPECT_EQ(r.read_bits(count), value);
  }
}

TEST(Bitstream, ReaderThrowsPastEnd) {
  BitWriter w;
  w.write_bit(true);
  BitReader r(w.finish());
  (void)r.read_bits(8);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW((void)r.read_bit(), std::out_of_range);
}

TEST(Bitstream, WriteBitsValidation) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, -1), std::invalid_argument);
  EXPECT_THROW(w.write_bits(0, 65), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::codec
