#include "codec/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"

namespace dwt::codec {
namespace {

dsp::Image integer_image(std::size_t n, std::uint64_t seed) {
  dsp::Image img = dsp::make_still_tone_image(n, n, seed);
  for (double& v : img.data()) v = std::round(v);
  return img;
}

TEST(Codec, LosslessModeIsBitExact) {
  const dsp::Image img = integer_image(64, 3);
  EncodeOptions opt;
  opt.mode = CodecMode::kLossless53;
  const EncodedImage enc = encode_image(img, opt);
  const dsp::Image dec = decode_image(enc.bytes);
  ASSERT_EQ(dec.width(), img.width());
  ASSERT_EQ(dec.height(), img.height());
  EXPECT_EQ(dec.data(), img.data());
}

TEST(Codec, LosslessCompressesStillToneImagery) {
  const dsp::Image img = integer_image(128, 5);
  EncodeOptions opt;
  opt.mode = CodecMode::kLossless53;
  const EncodedImage enc = encode_image(img, opt);
  // 8 bpp raw; correlated content should code well below that.
  EXPECT_LT(enc.bits_per_pixel(img.width(), img.height()), 7.0);
}

TEST(Codec, LossyQualityAndRateTradeOff) {
  const dsp::Image img = integer_image(128, 7);
  double prev_bpp = 1e9;
  double prev_psnr = 1e9;
  for (const double step : {1.0, 4.0, 16.0}) {
    EncodeOptions opt;
    opt.base_step = step;
    const EncodedImage enc = encode_image(img, opt);
    const dsp::Image dec = decode_image(enc.bytes);
    const double bpp = enc.bits_per_pixel(img.width(), img.height());
    const double quality = dsp::psnr(img, dec);
    EXPECT_LT(bpp, prev_bpp) << step;       // coarser step -> fewer bits
    EXPECT_LT(quality, prev_psnr) << step;  // ...and lower quality
    prev_bpp = bpp;
    prev_psnr = quality;
  }
}

TEST(Codec, LossyModeReachesUsefulQuality) {
  const dsp::Image img = integer_image(128, 9);
  EncodeOptions opt;
  opt.base_step = 4.0;
  const EncodedImage enc = encode_image(img, opt);
  const dsp::Image dec = decode_image(enc.bytes);
  EXPECT_GT(dsp::psnr(img, dec), 35.0);
  EXPECT_LT(enc.bits_per_pixel(img.width(), img.height()), 4.0);
}

TEST(Codec, NoiseCodesWorseThanStillTone) {
  EncodeOptions opt;
  opt.mode = CodecMode::kLossless53;
  const dsp::Image smooth = integer_image(64, 11);
  dsp::Image noise = dsp::make_noise_image(64, 64, 11);
  const double bpp_smooth =
      encode_image(smooth, opt).bits_per_pixel(64, 64);
  const double bpp_noise = encode_image(noise, opt).bits_per_pixel(64, 64);
  EXPECT_GT(bpp_noise, bpp_smooth);
}

TEST(Codec, HeaderRoundTripsOptions) {
  const dsp::Image img = integer_image(32, 13);
  for (const int octaves : {1, 2, 3}) {
    EncodeOptions opt;
    opt.octaves = octaves;
    opt.base_step = 2.0;
    const EncodedImage enc = encode_image(img, opt);
    EXPECT_NO_THROW((void)decode_image(enc.bytes)) << octaves;
  }
}

TEST(Codec, RejectsBadInputs) {
  EncodeOptions opt;
  opt.octaves = 0;
  EXPECT_THROW(encode_image(integer_image(32, 1), opt), std::invalid_argument);
  opt = {};
  opt.base_step = 0.0;
  EXPECT_THROW(encode_image(integer_image(32, 1), opt), std::invalid_argument);
  EXPECT_THROW(decode_image({0x00, 0x01, 0x02}), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::codec
