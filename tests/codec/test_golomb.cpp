#include "codec/golomb.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dwt::codec {
namespace {

TEST(ZigZag, BijectiveOnSmallValues) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(ExpGolomb, OrderZeroKnownCodes) {
  // Order-0 Exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
  BitWriter w;
  write_exp_golomb(w, 0, 0);
  write_exp_golomb(w, 1, 0);
  write_exp_golomb(w, 2, 0);
  write_exp_golomb(w, 3, 0);
  EXPECT_EQ(w.bit_count(), 1u + 3u + 3u + 5u);
  BitReader r(w.finish());
  EXPECT_EQ(read_exp_golomb(r, 0), 0u);
  EXPECT_EQ(read_exp_golomb(r, 0), 1u);
  EXPECT_EQ(read_exp_golomb(r, 0), 2u);
  EXPECT_EQ(read_exp_golomb(r, 0), 3u);
}

class GolombOrder : public ::testing::TestWithParam<int> {};

TEST_P(GolombOrder, RoundTripsRandomValues) {
  const int k = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(k) + 1);
  std::vector<std::uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 300; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(0, 100000));
    values.push_back(v);
    write_exp_golomb(w, v, k);
  }
  BitReader r(w.finish());
  for (const std::uint64_t v : values) {
    EXPECT_EQ(read_exp_golomb(r, k), v);
  }
}

TEST_P(GolombOrder, SignedRoundTrip) {
  const int k = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(k) + 77);
  std::vector<std::int64_t> values;
  BitWriter w;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.uniform(-50000, 50000);
    values.push_back(v);
    write_signed_exp_golomb(w, v, k);
  }
  BitReader r(w.finish());
  for (const std::int64_t v : values) {
    EXPECT_EQ(read_signed_exp_golomb(r, k), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GolombOrder, ::testing::Values(0, 1, 2, 3, 5, 8));

TEST(ExpGolomb, LengthMatchesWrittenBits) {
  for (const int k : {0, 1, 3}) {
    for (const std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 12345ull}) {
      BitWriter w;
      write_exp_golomb(w, v, k);
      EXPECT_EQ(static_cast<int>(w.bit_count()), exp_golomb_length(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

TEST(ExpGolomb, HigherOrderBetterForLargeValues) {
  // Order-k trades a k-bit floor cost for shorter prefixes on large values.
  EXPECT_LT(exp_golomb_length(1000, 5), exp_golomb_length(1000, 0));
  EXPECT_LT(exp_golomb_length(0, 0), exp_golomb_length(0, 5));
}

TEST(ExpGolomb, RejectsBadOrder) {
  BitWriter w;
  EXPECT_THROW(write_exp_golomb(w, 1, -1), std::invalid_argument);
  EXPECT_THROW(write_exp_golomb(w, 1, 33), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::codec
