#include "dsp/quantizer.hpp"

#include <gtest/gtest.h>

#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"

namespace dwt::dsp {
namespace {

TEST(DeadzoneQuantizer, ZeroStaysZero) {
  const DeadzoneQuantizer q{4.0};
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_EQ(q.dequantize(0), 0.0);
}

TEST(DeadzoneQuantizer, DeadzoneSwallowsSmallValues) {
  const DeadzoneQuantizer q{4.0};
  EXPECT_EQ(q.quantize(3.9), 0);
  EXPECT_EQ(q.quantize(-3.9), 0);
  EXPECT_EQ(q.quantize(4.0), 1);
  EXPECT_EQ(q.quantize(-4.0), -1);
}

TEST(DeadzoneQuantizer, MidpointReconstruction) {
  const DeadzoneQuantizer q{4.0};
  EXPECT_DOUBLE_EQ(q.dequantize(1), 6.0);   // bin [4, 8) -> 6
  EXPECT_DOUBLE_EQ(q.dequantize(-1), -6.0);
  EXPECT_DOUBLE_EQ(q.dequantize(3), 14.0);
}

TEST(DeadzoneQuantizer, ReconstructionErrorBounded) {
  const DeadzoneQuantizer q{2.5};
  for (double v = -30.0; v <= 30.0; v += 0.37) {
    const double r = q.dequantize(q.quantize(v));
    EXPECT_LE(std::abs(r - v), 2.5) << v;
  }
}

TEST(DeadzoneQuantizer, RejectsBadStep) {
  const DeadzoneQuantizer q{0.0};
  EXPECT_THROW((void)q.quantize(1.0), std::invalid_argument);
}

TEST(QuantizePlane, ZerosGrowWithStep) {
  Image a = make_still_tone_image(64, 64, 3);
  level_shift_forward(a);
  dwt2d_forward(Method::kLiftingFloat, a, 2);
  Image coarse = a;
  quantize_plane(a, 2, 2.0);
  quantize_plane(coarse, 2, 16.0);
  EXPECT_GT(zero_fraction(coarse), zero_fraction(a));
  EXPECT_GT(zero_fraction(a), 0.1);
}

TEST(QuantizePlane, LosesLittleQualityAtFineStep) {
  Image img = make_still_tone_image(64, 64, 9);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(Method::kLiftingFloat, img, 2);
  quantize_plane(img, 2, 1.0);
  dwt2d_inverse(Method::kLiftingFloat, img, 2);
  level_shift_inverse(img);
  EXPECT_GT(psnr(original, img.clamped_u8()), 35.0);
}

TEST(QuantizePlane, RateDistortionMonotone) {
  double prev_psnr = 1e9;
  for (const double step : {1.0, 4.0, 16.0}) {
    Image img = make_still_tone_image(64, 64, 9);
    const Image original = img;
    level_shift_forward(img);
    dwt2d_forward(Method::kLiftingFloat, img, 2);
    quantize_plane(img, 2, step);
    dwt2d_inverse(Method::kLiftingFloat, img, 2);
    level_shift_inverse(img);
    const double p = psnr(original, img.clamped_u8());
    EXPECT_LT(p, prev_psnr) << step;
    prev_psnr = p;
  }
}

TEST(ZeroFraction, CountsExactZeros) {
  Image img(4, 1);
  img.at(0, 0) = 0.0;
  img.at(1, 0) = 1.0;
  img.at(2, 0) = 0.0;
  img.at(3, 0) = -2.0;
  EXPECT_DOUBLE_EQ(zero_fraction(img), 0.5);
  EXPECT_THROW((void)zero_fraction(Image()), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::dsp
