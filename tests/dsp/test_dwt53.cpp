#include "dsp/dwt53.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::dsp {
namespace {

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> x(n);
  for (auto& v : x) v = rng.uniform(-128, 127);
  return x;
}

class Reversible53 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Reversible53, LosslessRoundTrip) {
  const auto x = random_samples(GetParam(), GetParam() + 3);
  const LiftSubbands53 s = lifting53_forward(x);
  const std::vector<std::int64_t> xr = lifting53_inverse(s.low, s.high);
  EXPECT_EQ(xr, x);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Reversible53,
                         ::testing::Values(2, 4, 6, 8, 16, 32, 64, 128, 256,
                                           1000));

TEST(Dwt53, KnownValues) {
  // d[0] = 7 - floor((10 + 20)/2) = -8; d[1] = 3 - floor((20+20)/2) = -17
  // s[0] = 10 + floor((-8 + -8 + 2)/4) = 10 + floor(-14/4) = 10 - 4 = 6
  // s[1] = 20 + floor((-8 + -17 + 2)/4) = 20 + floor(-23/4) = 20 - 6 = 14
  const std::vector<std::int64_t> x{10, 7, 20, 3};
  const LiftSubbands53 s = lifting53_forward(x);
  EXPECT_EQ(s.high[0], -8);
  EXPECT_EQ(s.high[1], -17);
  EXPECT_EQ(s.low[0], 6);
  EXPECT_EQ(s.low[1], 14);
}

TEST(Dwt53, ConstantSignalPassesThroughLow) {
  const std::vector<std::int64_t> x(16, 42);
  const LiftSubbands53 s = lifting53_forward(x);
  for (const std::int64_t v : s.high) EXPECT_EQ(v, 0);
  for (const std::int64_t v : s.low) EXPECT_EQ(v, 42);
}

TEST(Dwt53, LowBandStaysNearInputScale) {
  // Unlike the 9/7 in this normalization, the reversible 5/3 low band keeps
  // the pixel scale (DC gain 1).
  const auto x = random_samples(128, 7);
  const LiftSubbands53 s = lifting53_forward(x);
  for (const std::int64_t v : s.low) {
    EXPECT_GE(v, -260);
    EXPECT_LE(v, 260);
  }
}

TEST(Dwt53, OddLengthRoundTripsLosslessly) {
  const auto x = random_samples(29, 13);
  const LiftSubbands53 s = lifting53_forward(x);
  EXPECT_EQ(s.low.size(), 15u);
  EXPECT_EQ(s.high.size(), 14u);
  EXPECT_EQ(lifting53_inverse(s.low, s.high), x);
}

TEST(Dwt53, RejectsBadInput) {
  EXPECT_THROW(lifting53_forward(std::vector<std::int64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(
      lifting53_inverse(std::vector<std::int64_t>{}, std::vector<std::int64_t>{1}),
      std::invalid_argument);
  EXPECT_THROW(lifting53_inverse(std::vector<std::int64_t>{1, 2},
                                 std::vector<std::int64_t>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Dwt53, TwoDimensionalLosslessViaMethodEnum) {
  Image img = make_still_tone_image(64, 64, 31);
  round_coefficients(img);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(Method::kReversible53, img, 3);
  dwt2d_inverse(Method::kReversible53, img, 3);
  level_shift_inverse(img);
  EXPECT_EQ(img.data(), original.data());  // bit exact
}

TEST(Dwt53, IsFixedMethod) {
  EXPECT_TRUE(is_fixed(Method::kReversible53));
  EXPECT_FALSE(to_string(Method::kReversible53).empty());
}

}  // namespace
}  // namespace dwt::dsp
