#include "dsp/image.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "dsp/image_gen.hpp"

namespace dwt::dsp {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 7.0);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.at(3, 2), 7.0);
  img.at(1, 2) = -5.5;
  EXPECT_EQ(img.at(1, 2), -5.5);
}

TEST(Image, AtBoundsChecked) {
  Image img(4, 3);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 3), std::out_of_range);
}

TEST(Image, RowColRoundTrip) {
  Image img(5, 4);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 5; ++x) {
      img.at(x, y) = static_cast<double>(10 * y + x);
    }
  }
  const auto row = img.row(2, 5);
  EXPECT_EQ(row, (std::vector<double>{20, 21, 22, 23, 24}));
  const auto col = img.col(3, 4);
  EXPECT_EQ(col, (std::vector<double>{3, 13, 23, 33}));
  Image copy(5, 4);
  copy.set_row(2, row);
  EXPECT_EQ(copy.at(4, 2), 24.0);
  copy.set_col(3, col);
  EXPECT_EQ(copy.at(3, 0), 3.0);
}

TEST(Image, PartialRowAccess) {
  Image img(8, 2, 1.0);
  EXPECT_EQ(img.row(0, 3).size(), 3u);
  EXPECT_EQ(img.col(0, 2).size(), 2u);
  EXPECT_THROW(img.row(0, 9), std::out_of_range);
}

TEST(Image, Crop) {
  Image img(8, 8);
  img.at(2, 3) = 42.0;
  const Image tile = img.crop(4, 4);
  EXPECT_EQ(tile.width(), 4u);
  EXPECT_EQ(tile.at(2, 3), 42.0);
  EXPECT_THROW(img.crop(9, 4), std::out_of_range);
}

TEST(Image, ClampedU8) {
  Image img(3, 1);
  img.at(0, 0) = -4.2;
  img.at(1, 0) = 99.6;
  img.at(2, 0) = 260.0;
  const Image c = img.clamped_u8();
  EXPECT_EQ(c.at(0, 0), 0.0);
  EXPECT_EQ(c.at(1, 0), 100.0);
  EXPECT_EQ(c.at(2, 0), 255.0);
}

TEST(Image, PgmRoundTrip) {
  const Image img = make_still_tone_image(32, 16, 5);
  const std::string path = ::testing::TempDir() + "/roundtrip.pgm";
  write_pgm(img, path);
  const Image back = read_pgm(path);
  ASSERT_EQ(back.width(), 32u);
  ASSERT_EQ(back.height(), 16u);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 32; ++x) {
      EXPECT_NEAR(back.at(x, y), std::round(img.at(x, y)), 0.5);
    }
  }
  std::remove(path.c_str());
}

TEST(Image, ReadsAsciiPgmWithComments) {
  const std::string path = ::testing::TempDir() + "/ascii.pgm";
  {
    std::ofstream out(path);
    out << "P2\n# a comment line\n2 2\n255\n0 64\n128 255\n";
  }
  const Image img = read_pgm(path);
  EXPECT_EQ(img.at(0, 0), 0.0);
  EXPECT_EQ(img.at(1, 0), 64.0);
  EXPECT_EQ(img.at(0, 1), 128.0);
  EXPECT_EQ(img.at(1, 1), 255.0);
  std::remove(path.c_str());
}

TEST(Image, ReadRejectsMissingFileAndBadMagic) {
  EXPECT_THROW(read_pgm("/nonexistent/file.pgm"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/bad.pgm";
  {
    std::ofstream out(path);
    out << "P6\n2 2\n255\nxxxx";
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

/// Writes `content` verbatim and expects read_pgm to reject it.
void expect_rejected(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error) << name;
  std::remove(path.c_str());
}

TEST(Image, ReadRejectsMalformedHeaders) {
  expect_rejected("trunc_magic.pgm", "P5");
  expect_rejected("trunc_dims.pgm", "P5\n4");
  expect_rejected("comment_eof.pgm", "P2\n# comment then nothing");
  expect_rejected("negative_dim.pgm", "P2\n-4 4\n255\n0 0 0 0\n");
  expect_rejected("zero_dim.pgm", "P2\n0 4\n255\n");
  expect_rejected("huge_dim.pgm", "P2\n70000 4\n255\n0\n");
  expect_rejected("wide_maxval.pgm", "P5\n2 2\n65535\n\0\0\0\0\0\0\0\0");
  expect_rejected("zero_maxval.pgm", "P2\n2 2\n0\n0 0 0 0\n");
}

TEST(Image, ReadRejectsTruncatedOrOutOfRangePixels) {
  expect_rejected("trunc_binary.pgm", "P5\n4 4\n255\nab");  // 2 of 16 bytes
  expect_rejected("trunc_ascii.pgm", "P2\n2 2\n255\n0 1 2\n");
  expect_rejected("over_maxval.pgm", "P2\n2 2\n100\n0 50 101 0\n");
  expect_rejected("negative_pixel.pgm", "P2\n2 2\n255\n0 -3 0 0\n");
}

TEST(Image, ReadAcceptsOddDimensionsAndCommentsEverywhere) {
  const std::string path = ::testing::TempDir() + "/odd_comments.pgm";
  {
    std::ofstream out(path);
    out << "P2\n# c1\n3 # c2\n1\n# c3\n255\n7 8 9\n";
  }
  const Image img = read_pgm(path);
  ASSERT_EQ(img.width(), 3u);
  ASSERT_EQ(img.height(), 1u);
  EXPECT_EQ(img.at(0, 0), 7.0);
  EXPECT_EQ(img.at(2, 0), 9.0);
  std::remove(path.c_str());
}

TEST(ImageGen, StillToneIsDeterministicAndInRange) {
  const Image a = make_still_tone_image(64, 64, 7);
  const Image b = make_still_tone_image(64, 64, 7);
  EXPECT_EQ(a.data(), b.data());
  for (const double v : a.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
  }
}

TEST(ImageGen, StillToneIsPixelCorrelated) {
  // Adjacent-pixel correlation is what the DWT exploits; the synthetic
  // scene must look like a photograph, not noise.
  const Image img = make_still_tone_image(128, 128, 2005);
  double diff = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < 128; ++y) {
    for (std::size_t x = 1; x < 128; ++x) {
      diff += std::abs(img.at(x, y) - img.at(x - 1, y));
      ++n;
    }
  }
  EXPECT_LT(diff / static_cast<double>(n), 12.0);
}

TEST(ImageGen, NoiseIsNotCorrelated) {
  const Image img = make_noise_image(128, 128, 1);
  double diff = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < 128; ++y) {
    for (std::size_t x = 1; x < 128; ++x) {
      diff += std::abs(img.at(x, y) - img.at(x - 1, y));
      ++n;
    }
  }
  EXPECT_GT(diff / static_cast<double>(n), 60.0);
}

TEST(ImageGen, RampIsMonotone) {
  const Image img = make_ramp_image(32, 4);
  for (std::size_t x = 1; x < 32; ++x) {
    EXPECT_GT(img.at(x, 0), img.at(x - 1, 0));
  }
}

}  // namespace
}  // namespace dwt::dsp
