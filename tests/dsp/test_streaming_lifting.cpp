#include "dsp/streaming_lifting.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/dwt97_lifting_fixed.hpp"
#include "dsp/fir_filter.hpp"

namespace dwt::dsp {
namespace {

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> x(n);
  for (auto& v : x) v = rng.uniform(-128, 127);
  return x;
}

/// Feeds the WSS-extended stream (guard pairs before and after) and collects
/// the payload outputs -- the same protocol as the hardware harness.
std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>> run_streaming(
    std::span<const std::int64_t> x, int guard_pairs = 4) {
  StreamingLifting97Fixed engine;
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(x.size() / 2);
  std::vector<std::int64_t> low(x.size() / 2), high(x.size() / 2);
  auto x_ext = [&x](std::ptrdiff_t pos) {
    return x[mirror_index(pos, x.size())];
  };
  for (std::ptrdiff_t t = -guard_pairs; t < half + guard_pairs; ++t) {
    const auto out = engine.push(x_ext(2 * t), x_ext(2 * t + 1));
    const std::ptrdiff_t i = t - StreamingLifting97Fixed::kDelayPairs;
    if (out.has_value() && i >= 0 && i < half) {
      low[static_cast<std::size_t>(i)] = out->first;
      high[static_cast<std::size_t>(i)] = out->second;
    }
  }
  return {std::move(low), std::move(high)};
}

class StreamingMatchesBatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingMatchesBatch, BitExact) {
  const auto x = random_samples(128, GetParam());
  const auto [low, high] = run_streaming(x);
  const auto batch =
      lifting97_forward_fixed(x, LiftingFixedCoeffs::rounded(8));
  EXPECT_EQ(low, batch.low);
  EXPECT_EQ(high, batch.high);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingMatchesBatch,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(StreamingLifting, WarmUpReturnsNothing) {
  StreamingLifting97Fixed engine;
  EXPECT_FALSE(engine.push(1, 2).has_value());
  EXPECT_FALSE(engine.push(3, 4).has_value());
  EXPECT_TRUE(engine.push(5, 6).has_value());
}

TEST(StreamingLifting, ResetRestartsWarmUp) {
  StreamingLifting97Fixed engine;
  (void)engine.push(1, 2);
  (void)engine.push(3, 4);
  (void)engine.push(5, 6);
  engine.reset();
  EXPECT_FALSE(engine.push(1, 2).has_value());
}

TEST(StreamingLifting, DeterministicAcrossInstances) {
  const auto x = random_samples(64, 42);
  const auto a = run_streaming(x);
  const auto b = run_streaming(x);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(StreamingLifting, ShortestSignal) {
  const std::vector<std::int64_t> x{10, -3};
  const auto [low, high] = run_streaming(x);
  const auto batch =
      lifting97_forward_fixed(x, LiftingFixedCoeffs::rounded(8));
  EXPECT_EQ(low, batch.low);
  EXPECT_EQ(high, batch.high);
}

}  // namespace
}  // namespace dwt::dsp
