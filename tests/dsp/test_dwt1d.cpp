#include "dsp/dwt1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace dwt::dsp {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = static_cast<double>(rng.uniform(-128, 127));
  return x;
}

constexpr Method kAllMethods[] = {Method::kFirFloat, Method::kFirFixed,
                                  Method::kLiftingFloat, Method::kLiftingFixed};

class AllMethods : public ::testing::TestWithParam<Method> {};

TEST_P(AllMethods, SubbandSizes) {
  const auto x = random_signal(64, 2);
  const Subbands1d s = dwt1d_forward(GetParam(), x);
  EXPECT_EQ(s.low.size(), 32u);
  EXPECT_EQ(s.high.size(), 32u);
}

TEST_P(AllMethods, RoundTripErrorBounded) {
  const Method m = GetParam();
  const auto x = random_signal(128, 3);
  const Subbands1d s = dwt1d_forward(m, x);
  const std::vector<double> xr = dwt1d_inverse(m, s.low, s.high);
  const double tol = is_fixed(m) ? 6.0 : 1e-9;
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], tol) << to_string(m) << " i=" << i;
  }
}

TEST_P(AllMethods, FixedMethodsProduceIntegers) {
  const Method m = GetParam();
  const auto x = random_signal(32, 4);
  const Subbands1d s = dwt1d_forward(m, x);
  if (is_fixed(m)) {
    for (const double v : s.low) EXPECT_EQ(v, std::floor(v));
    for (const double v : s.high) EXPECT_EQ(v, std::floor(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, AllMethods, ::testing::ValuesIn(kAllMethods),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case Method::kFirFloat: return "FirFloat";
                             case Method::kFirFixed: return "FirFixed";
                             case Method::kLiftingFloat: return "LiftingFloat";
                             case Method::kLiftingFixed: return "LiftingFixed";
                             default: break;
                           }
                           return "Unknown";
                         });

TEST(Dwt1d, MethodsAgreeOnLowBand) {
  // All four methods compute the same transform up to quantization noise
  // (the paper's Table 2 premise).
  const auto x = random_signal(64, 5);
  const Subbands1d fir = dwt1d_forward(Method::kFirFloat, x);
  const Subbands1d lf = dwt1d_forward(Method::kLiftingFloat, x);
  const Subbands1d ff = dwt1d_forward(Method::kFirFixed, x);
  const Subbands1d lx = dwt1d_forward(Method::kLiftingFixed, x);
  for (std::size_t i = 0; i < fir.low.size(); ++i) {
    EXPECT_NEAR(lf.low[i], fir.low[i], 1e-9);
    EXPECT_NEAR(ff.low[i], fir.low[i], 6.0);
    EXPECT_NEAR(lx.low[i], fir.low[i], 6.0);
  }
}

TEST(Dwt1d, HighBandSignConventionsDocumented) {
  const auto x = random_signal(64, 6);
  const Subbands1d fir = dwt1d_forward(Method::kFirFloat, x);
  const Subbands1d lf = dwt1d_forward(Method::kLiftingFloat, x);
  for (std::size_t i = 0; i < fir.high.size(); ++i) {
    EXPECT_NEAR(lf.high[i], -fir.high[i], 1e-9) << i;
  }
}

TEST(Dwt1d, ToStringCoversAllMethods) {
  for (const Method m : kAllMethods) {
    EXPECT_FALSE(to_string(m).empty());
  }
}

TEST(Dwt1d, CustomFracBitsRoundTripStaysBounded) {
  const auto x = random_signal(64, 7);
  const Subbands1d s12 = dwt1d_forward(Method::kLiftingFixed, x, 12);
  const std::vector<double> xr =
      dwt1d_inverse(Method::kLiftingFixed, s12.low, s12.high, 12);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], 6.0) << i;
  }
}

TEST(Dwt1d, HwFloatMethodsRoundTrip) {
  const auto x = random_signal(64, 8);
  for (const Method m : {Method::kFirHwFloat, Method::kLiftingHwFloat}) {
    const Subbands1d s = dwt1d_forward(m, x);
    const std::vector<double> xr = dwt1d_inverse(m, s.low, s.high);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(xr[i], x[i], 6.0) << to_string(m) << " " << i;
    }
  }
}

}  // namespace
}  // namespace dwt::dsp
