#include "dsp/dwt97_lifting_fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/dwt97_lifting.hpp"

namespace dwt::dsp {
namespace {

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> x(n);
  for (auto& v : x) v = rng.uniform(-128, 127);
  return x;
}

TEST(LiftingFixed, LiftStepDefinition) {
  const auto c = LiftingFixedCoeffs::rounded(8);
  EXPECT_EQ(lift_step(7, 10, 20, c.alpha), 7 + ((30 * -406) >> 8));
  EXPECT_EQ(scale_step(100, c.inv_k), (100 * 208) >> 8);
}

TEST(LiftingFixed, TracksFloatWithinQuantization) {
  const auto xi = random_samples(128, 3);
  const std::vector<double> xd(xi.begin(), xi.end());
  const auto c = LiftingFixedCoeffs::rounded(8);
  const LiftSubbandsFixed sf = lifting97_forward_fixed(xi, c);
  const LiftSubbands s = lifting97_forward(xd);
  for (std::size_t i = 0; i < sf.low.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(sf.low[i]), s.low[i], 6.0) << i;
    EXPECT_NEAR(static_cast<double>(sf.high[i]), s.high[i], 6.0) << i;
  }
}

class FixedRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedRoundTrip, ErrorBoundedByAFewLsb) {
  const auto xi = random_samples(96, GetParam());
  const auto c = LiftingFixedCoeffs::rounded(8);
  const LiftSubbandsFixed s = lifting97_forward_fixed(xi, c);
  const std::vector<std::int64_t> xr = lifting97_inverse_fixed(s.low, s.high, c);
  ASSERT_EQ(xr.size(), xi.size());
  for (std::size_t i = 0; i < xi.size(); ++i) {
    EXPECT_LE(std::abs(xr[i] - xi[i]), 5) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedRoundTrip, ::testing::Range<std::uint64_t>(1, 17));

TEST(LiftingFixed, TraceStagesAreConsistent) {
  const auto xi = random_samples(32, 9);
  const auto c = LiftingFixedCoeffs::rounded(8);
  const LiftingTrace t = lifting97_forward_fixed_trace(xi, c);
  ASSERT_EQ(t.d1.size(), 16u);
  // Re-derive d1 from the definition.
  for (std::size_t i = 0; i < 16; ++i) {
    const std::int64_t s_next = i + 1 < 16 ? t.s0[i + 1] : t.s0[15];
    EXPECT_EQ(t.d1[i], lift_step(t.d0[i], t.s0[i], s_next, c.alpha)) << i;
  }
  // Outputs come from the final stages.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.low[i], scale_step(t.s2[i], c.inv_k)) << i;
    EXPECT_EQ(t.high[i], scale_step(t.d2[i], c.minus_k)) << i;
  }
}

TEST(LiftingFixed, TraceMatchesForwardOutputs) {
  const auto xi = random_samples(64, 10);
  const auto c = LiftingFixedCoeffs::rounded(8);
  const LiftingTrace t = lifting97_forward_fixed_trace(xi, c);
  const LiftSubbandsFixed s = lifting97_forward_fixed(xi, c);
  EXPECT_EQ(t.low, s.low);
  EXPECT_EQ(t.high, s.high);
}

TEST(LiftingFixed, LiftingStepsInvertExactly) {
  // Only the k-scaling is lossy; verify by scaling manually and inverting
  // the four lifting steps alone.
  const auto xi = random_samples(64, 11);
  const auto c = LiftingFixedCoeffs::rounded(8);
  const LiftingTrace t = lifting97_forward_fixed_trace(xi, c);
  // Reconstruct from s2/d2 (pre-scaling): must be bit exact.
  std::vector<std::int64_t> s = t.s2;
  std::vector<std::int64_t> d = t.d2;
  const std::size_t half = s.size();
  auto s_at = [&](std::size_t i) { return i < half ? s[i] : s[half - 1]; };
  auto d_before = [&](std::size_t i) { return i == 0 ? d[0] : d[i - 1]; };
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= common::mul_const_truncate(d_before(i) + d[i], c.delta);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(i + 1), c.gamma);
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= common::mul_const_truncate(d_before(i) + d[i], c.beta);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(i + 1), c.alpha);
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(s[i], xi[2 * i]) << i;
    EXPECT_EQ(d[i], xi[2 * i + 1]) << i;
  }
}

TEST(LiftingFixed, CoarserWordLengthIncreasesError) {
  // Per-step truncation noise (~1 LSB of the integer state) dominates once
  // the constants carry >= 8 fractional bits, so widening past 8 changes
  // little; *narrowing* the constants to 4 bits visibly hurts.
  const auto xi = random_samples(128, 13);
  const std::vector<double> xd(xi.begin(), xi.end());
  const LiftSubbands ref = lifting97_forward(xd);
  double err4 = 0, err8 = 0;
  const auto s4 = lifting97_forward_fixed(xi, LiftingFixedCoeffs::rounded(4));
  const auto s8 = lifting97_forward_fixed(xi, LiftingFixedCoeffs::rounded(8));
  for (std::size_t i = 0; i < ref.low.size(); ++i) {
    err4 += std::abs(static_cast<double>(s4.low[i]) - ref.low[i]);
    err8 += std::abs(static_cast<double>(s8.low[i]) - ref.low[i]);
  }
  EXPECT_GT(err4, 1.5 * err8);
}

TEST(LiftingFixed, HwFloatCoincidesWithRoundedConstantsAtMatchingPrecision) {
  // floor(raw/256 * v) == (raw * v) >> 8: running the hw-float model with
  // the rounded constants must reproduce the fixed model bit for bit.
  const auto xi = random_samples(96, 21);
  const auto fc = LiftingFixedCoeffs::rounded(8);
  const LiftingCoeffs rc{fc.alpha.to_double(), fc.beta.to_double(),
                         fc.gamma.to_double(), fc.delta.to_double(),
                         -fc.minus_k.to_double()};
  const auto a = lifting97_forward_fixed(xi, fc);
  const auto b = lifting97_forward_hw(xi, rc);
  // The high path multiplies by -k = -315/256, exactly representable in
  // double, so floor((raw*v)/256) == (raw*v)>>8 bit for bit.  (The low path
  // uses 1/k, whose reciprocal is not representable, so it may differ by
  // one LSB.)
  EXPECT_EQ(a.high, b.high);
  for (std::size_t i = 0; i < a.low.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(a.low[i]), static_cast<double>(b.low[i]),
                1.0);
  }
}

TEST(LiftingFixed, HwFloatRoundTripErrorBounded) {
  const auto xi = random_samples(96, 22);
  const auto& c = LiftingCoeffs::daubechies97();
  const auto s = lifting97_forward_hw(xi, c);
  const auto xr = lifting97_inverse_hw(s.low, s.high, c);
  for (std::size_t i = 0; i < xi.size(); ++i) {
    EXPECT_LE(std::abs(xr[i] - xi[i]), 5) << i;
  }
}

TEST(LiftingFixed, OddLengthRoundTripErrorBounded) {
  const auto c = LiftingFixedCoeffs::rounded(8);
  const auto x = random_samples(33, 17);
  const auto s = lifting97_forward_fixed(x, c);
  EXPECT_EQ(s.low.size(), 17u);
  EXPECT_EQ(s.high.size(), 16u);
  // The k-scaling is lossy, so like the even-length round trip the error is
  // a few LSB, not zero.
  const auto xr = lifting97_inverse_fixed(s.low, s.high, c);
  ASSERT_EQ(xr.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(xr[i] - x[i]), 5) << "i=" << i;
  }
}

TEST(LiftingFixed, RejectsEmptySignal) {
  const auto c = LiftingFixedCoeffs::rounded(8);
  EXPECT_THROW(lifting97_forward_fixed(std::vector<std::int64_t>{}, c),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::dsp
