#include "dsp/dwt97_fir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace dwt::dsp {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = static_cast<double>(rng.uniform(-128, 127));
  return x;
}

TEST(Dwt97Fir, SubbandSizesAreHalf) {
  const auto x = random_signal(64, 1);
  const FirSubbands s = fir97_forward(x);
  EXPECT_EQ(s.low.size(), 32u);
  EXPECT_EQ(s.high.size(), 32u);
}

TEST(Dwt97Fir, OddLengthSplitsCeilFloor) {
  const auto x = random_signal(33, 3);
  const FirSubbands s = fir97_forward(x);
  EXPECT_EQ(s.low.size(), 17u);
  EXPECT_EQ(s.high.size(), 16u);
  const std::vector<double> xr = fir97_inverse(s.low, s.high);
  ASSERT_EQ(xr.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], 1e-9) << "i=" << i;
  }
}

TEST(Dwt97Fir, SingleSamplePassesThrough) {
  const FirSubbands s = fir97_forward(std::vector<double>{42.0});
  ASSERT_EQ(s.low.size(), 1u);
  EXPECT_EQ(s.high.size(), 0u);
  EXPECT_DOUBLE_EQ(s.low[0], 42.0);
  const std::vector<double> xr = fir97_inverse(s.low, s.high);
  ASSERT_EQ(xr.size(), 1u);
  EXPECT_DOUBLE_EQ(xr[0], 42.0);
}

TEST(Dwt97Fir, RejectsEmptySignal) {
  EXPECT_THROW(fir97_forward(std::vector<double>{}), std::invalid_argument);
}

TEST(Dwt97Fir, InverseRejectsMismatchedSubbands) {
  const std::vector<double> low(4, 0.0), high(5, 0.0);
  EXPECT_THROW(fir97_inverse(low, high), std::invalid_argument);
  EXPECT_THROW(fir97_inverse(std::vector<double>(4, 0.0),
                             std::vector<double>(2, 0.0)),
               std::invalid_argument);
}

class FirPerfectReconstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirPerfectReconstruction, RoundTripIsExact) {
  const auto x = random_signal(GetParam(), GetParam());
  const FirSubbands s = fir97_forward(x);
  const std::vector<double> xr = fir97_inverse(s.low, s.high);
  ASSERT_EQ(xr.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FirPerfectReconstruction,
                         ::testing::Values(2, 4, 6, 8, 10, 16, 32, 64, 126,
                                           128, 256, 512));

TEST(Dwt97Fir, ConstantSignalConcentratesInLowBand) {
  const std::vector<double> x(32, 100.0);
  const FirSubbands s = fir97_forward(x);
  for (std::size_t i = 0; i < s.low.size(); ++i) {
    EXPECT_NEAR(s.low[i], 100.0, 1e-9);   // analysis DC gain 1
    EXPECT_NEAR(s.high[i], 0.0, 1e-9);
  }
}

TEST(Dwt97Fir, LinearRampHasZeroHighBandInterior) {
  // The 9/7 high-pass filter has two vanishing moments: polynomials of
  // degree <= 1 are annihilated away from boundaries.
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 3.0 * static_cast<double>(i);
  const FirSubbands s = fir97_forward(x);
  for (std::size_t i = 2; i + 2 < s.high.size(); ++i) {
    EXPECT_NEAR(s.high[i], 0.0, 1e-9) << i;
  }
}

TEST(Dwt97Fir, EnergyRoughlyPreserved) {
  // The 9/7 transform is near-orthogonal in this normalization after
  // accounting for the dyadic weighting; a loose two-sided bound guards
  // against scaling regressions.
  const auto x = random_signal(256, 5);
  const FirSubbands s = fir97_forward(x);
  double ex = 0, es = 0;
  for (const double v : x) ex += v * v;
  for (const double v : s.low) es += v * v;
  for (const double v : s.high) es += v * v;
  EXPECT_GT(es, 0.4 * ex);
  EXPECT_LT(es, 2.5 * ex);
}

TEST(Dwt97FirFixed, MatchesFloatWithinQuantization) {
  const auto x = random_signal(64, 9);
  std::vector<std::int64_t> xi(x.begin(), x.end());
  const auto coeffs = Dwt97FirFixedCoeffs::rounded(8);
  const FirSubbandsFixed sf = fir97_forward_fixed(xi, coeffs);
  const FirSubbands s = fir97_forward(x);
  for (std::size_t i = 0; i < s.low.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(sf.low[i]), s.low[i], 3.0) << i;
    EXPECT_NEAR(static_cast<double>(sf.high[i]), s.high[i], 3.0) << i;
  }
}

TEST(Dwt97FirFixed, RoundTripErrorSmall) {
  const auto x = random_signal(128, 12);
  std::vector<std::int64_t> xi(x.begin(), x.end());
  const auto coeffs = Dwt97FirFixedCoeffs::rounded(8);
  const FirSubbandsFixed s = fir97_forward_fixed(xi, coeffs);
  const std::vector<std::int64_t> xr = fir97_inverse_fixed(s.low, s.high, coeffs);
  ASSERT_EQ(xr.size(), xi.size());
  for (std::size_t i = 0; i < xi.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(xr[i]), static_cast<double>(xi[i]), 6.0)
        << i;
  }
}

TEST(Dwt97Fir, ArchitectureCostMatchesFigure2) {
  const FirArchitectureCost cost = fir97_architecture_cost();
  EXPECT_EQ(cost.adders, 16);
  EXPECT_EQ(cost.multipliers, 16);
  EXPECT_EQ(cost.delay_registers, 8);
}

}  // namespace
}  // namespace dwt::dsp
