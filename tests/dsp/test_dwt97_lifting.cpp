#include "dsp/dwt97_lifting.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/dwt97_fir.hpp"

namespace dwt::dsp {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = static_cast<double>(rng.uniform(-128, 127));
  return x;
}

class LiftingPerfectReconstruction
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LiftingPerfectReconstruction, RoundTripIsExact) {
  const auto x = random_signal(GetParam(), GetParam() + 1);
  const LiftSubbands s = lifting97_forward(x);
  const std::vector<double> xr = lifting97_inverse(s.low, s.high);
  ASSERT_EQ(xr.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], 1e-10) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, LiftingPerfectReconstruction,
                         ::testing::Values(2, 4, 6, 8, 12, 16, 32, 64, 128,
                                           256, 500));

TEST(Dwt97Lifting, EquivalentToFirFilterBank) {
  // The lifting factorization is exact: the low band equals the FIR filter
  // bank's, and the high band is sign-flipped (the paper's -k convention).
  const auto x = random_signal(64, 77);
  const LiftSubbands l = lifting97_forward(x);
  const FirSubbands f = fir97_forward(x);
  ASSERT_EQ(l.low.size(), f.low.size());
  for (std::size_t i = 0; i < l.low.size(); ++i) {
    EXPECT_NEAR(l.low[i], f.low[i], 1e-9) << i;
    EXPECT_NEAR(l.high[i], -f.high[i], 1e-9) << i;
  }
}

TEST(Dwt97Lifting, ConstantSignal) {
  const std::vector<double> x(32, 50.0);
  const LiftSubbands s = lifting97_forward(x);
  for (std::size_t i = 0; i < s.low.size(); ++i) {
    EXPECT_NEAR(s.low[i], 50.0, 1e-9);
    EXPECT_NEAR(s.high[i], 0.0, 1e-9);
  }
}

TEST(Dwt97Lifting, OddLengthRoundTrips) {
  const auto x = random_signal(31, 9);
  const LiftSubbands s = lifting97_forward(x);
  EXPECT_EQ(s.low.size(), 16u);
  EXPECT_EQ(s.high.size(), 15u);
  const std::vector<double> xr = lifting97_inverse(s.low, s.high);
  ASSERT_EQ(xr.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xr[i], x[i], 1e-9) << i;
  }
}

TEST(Dwt97Lifting, RejectsEmptySignal) {
  EXPECT_THROW(lifting97_forward(std::vector<double>{}),
               std::invalid_argument);
}

TEST(Dwt97Lifting, InverseRejectsMismatch) {
  EXPECT_THROW(
      lifting97_inverse(std::vector<double>(3), std::vector<double>(4)),
      std::invalid_argument);
  EXPECT_THROW(
      lifting97_inverse(std::vector<double>{}, std::vector<double>{}),
      std::invalid_argument);
}

TEST(Dwt97Lifting, LinearityProperty) {
  const auto a = random_signal(32, 5);
  const auto b = random_signal(32, 6);
  std::vector<double> sum(32);
  for (std::size_t i = 0; i < 32; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const LiftSubbands sa = lifting97_forward(a);
  const LiftSubbands sb = lifting97_forward(b);
  const LiftSubbands ss = lifting97_forward(sum);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(ss.low[i], 2.0 * sa.low[i] + 3.0 * sb.low[i], 1e-9);
    EXPECT_NEAR(ss.high[i], 2.0 * sa.high[i] + 3.0 * sb.high[i], 1e-9);
  }
}

TEST(Dwt97Lifting, RampHasZeroInteriorHighBand) {
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * static_cast<double>(i) - 10.0;
  }
  const LiftSubbands s = lifting97_forward(x);
  for (std::size_t i = 2; i + 2 < s.high.size(); ++i) {
    EXPECT_NEAR(s.high[i], 0.0, 1e-9) << i;
  }
}

}  // namespace
}  // namespace dwt::dsp
