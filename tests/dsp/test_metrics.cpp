#include "dsp/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwt::dsp {
namespace {

TEST(Metrics, MseOfIdenticalIsZero) {
  const std::vector<double> a{1, 2, 3};
  EXPECT_EQ(mse(a, a), 0.0);
}

TEST(Metrics, MseDefinition) {
  const std::vector<double> a{0, 0, 0, 0};
  const std::vector<double> b{1, -1, 2, -2};
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 1.0 + 4.0 + 4.0) / 4.0);
}

TEST(Metrics, MseRejectsMismatch) {
  EXPECT_THROW((void)mse(std::vector<double>{1}, std::vector<double>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)mse(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(Metrics, PsnrOfIdenticalIsInfinite) {
  const std::vector<double> a{5, 6, 7};
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, PsnrKnownValue) {
  // MSE = 1 with peak 255: PSNR = 10 log10(255^2) = 48.13 dB.
  std::vector<double> a(100, 0.0), b(100, 1.0);
  EXPECT_NEAR(psnr(a, b), 48.1308, 1e-3);
}

TEST(Metrics, PsnrDecreasesWithError) {
  std::vector<double> a(64, 0.0), b1(64, 1.0), b4(64, 4.0);
  EXPECT_GT(psnr(a, b1), psnr(a, b4));
}

TEST(Metrics, ImageOverloadMatchesVector) {
  Image x(4, 2), y(4, 2);
  for (std::size_t i = 0; i < 8; ++i) {
    x.data()[i] = static_cast<double>(i);
    y.data()[i] = static_cast<double>(i) + 2.0;
  }
  EXPECT_DOUBLE_EQ(mse(x, y), 4.0);
  EXPECT_DOUBLE_EQ(psnr(x, y), psnr(x.data(), y.data()));
}

TEST(Metrics, ImageDimensionMismatchRejected) {
  EXPECT_THROW((void)mse(Image(2, 2), Image(4, 1)), std::invalid_argument);
}

TEST(Metrics, CustomPeak) {
  std::vector<double> a(10, 0.0), b(10, 1.0);
  EXPECT_NEAR(psnr(a, b, 1.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace dwt::dsp
