#include "dsp/fir_filter.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dwt::dsp {
namespace {

TEST(FirCoeffs, AnalysisLowPassIsSymmetricWithDcGainOne) {
  const auto& c = Dwt97FirCoeffs::daubechies97();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(c.analysis_low[i], c.analysis_low[8 - i]);
  }
  const double sum =
      std::accumulate(c.analysis_low.begin(), c.analysis_low.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirCoeffs, AnalysisHighPassIsSymmetricWithZeroDc) {
  const auto& c = Dwt97FirCoeffs::daubechies97();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(c.analysis_high[i], c.analysis_high[6 - i]);
  }
  const double sum =
      std::accumulate(c.analysis_high.begin(), c.analysis_high.end(), 0.0);
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(FirCoeffs, SynthesisLowPassDcGainTwo) {
  const auto& c = Dwt97FirCoeffs::daubechies97();
  const double sum =
      std::accumulate(c.synthesis_low.begin(), c.synthesis_low.end(), 0.0);
  EXPECT_NEAR(sum, 2.0, 1e-10);
}

TEST(FirCoeffs, BiorthogonalModulationRelation) {
  // Synthesis low = (-1)^n * analysis high; synthesis high = (-1)^n *
  // analysis low (center-aligned).
  const auto& c = Dwt97FirCoeffs::daubechies97();
  for (std::size_t i = 0; i < 7; ++i) {
    const double sign = (i % 2 == 0) ? -1.0 : 1.0;
    EXPECT_NEAR(c.synthesis_low[i], sign * c.analysis_high[i], 1e-12) << i;
  }
}

TEST(FirFixedCoeffs, RoundedAtEightBits) {
  const auto f = Dwt97FirFixedCoeffs::rounded(8);
  EXPECT_EQ(f.analysis_low[4], 154);   // 0.602949 * 256 = 154.35
  EXPECT_EQ(f.analysis_high[3], 285);  // 1.115087 * 256 = 285.46
  EXPECT_EQ(f.analysis_low[0], 7);     // 0.026749 * 256 = 6.85
  EXPECT_EQ(f.analysis_low[1], -4);    // -0.016864 * 256 = -4.32
  EXPECT_EQ(f.frac_bits, 8);
}

TEST(MirrorIndex, IdentityInsideRange) {
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(mirror_index(static_cast<std::ptrdiff_t>(i), 8), i);
  }
}

TEST(MirrorIndex, WholeSampleSymmetryAtZero) {
  // x[-1] = x[1], x[-2] = x[2]: mirror without repeating the edge sample.
  EXPECT_EQ(mirror_index(-1, 8), 1u);
  EXPECT_EQ(mirror_index(-2, 8), 2u);
  EXPECT_EQ(mirror_index(-7, 8), 7u);
}

TEST(MirrorIndex, WholeSampleSymmetryAtTop) {
  EXPECT_EQ(mirror_index(8, 8), 6u);
  EXPECT_EQ(mirror_index(9, 8), 5u);
  EXPECT_EQ(mirror_index(14, 8), 0u);
}

TEST(MirrorIndex, PeriodicBeyondOneReflection) {
  // The extension has period 2(n-1) = 14 for n = 8.
  EXPECT_EQ(mirror_index(15, 8), mirror_index(1, 8));
  EXPECT_EQ(mirror_index(-15, 8), mirror_index(-1, 8));
}

TEST(MirrorIndex, SingleSampleSignal) {
  EXPECT_EQ(mirror_index(5, 1), 0u);
  EXPECT_EQ(mirror_index(-5, 1), 0u);
}

TEST(MirrorIndex, EmptySignalThrows) {
  EXPECT_THROW((void)mirror_index(0, 0), std::invalid_argument);
}

TEST(FirAt, ImpulseRecoversCoefficients) {
  // Filtering a centered impulse reproduces the filter taps.
  std::vector<double> x(32, 0.0);
  x[16] = 1.0;
  const auto& c = Dwt97FirCoeffs::daubechies97();
  for (int k = -4; k <= 4; ++k) {
    EXPECT_NEAR(fir_at(x, 16 + k, c.analysis_low),
                c.analysis_low[static_cast<std::size_t>(4 - k)], 1e-15);
  }
}

TEST(FirAt, ConstantSignalGivesDcGain) {
  const std::vector<double> x(16, 3.0);
  const auto& c = Dwt97FirCoeffs::daubechies97();
  EXPECT_NEAR(fir_at(x, 7, c.analysis_low), 3.0, 1e-12);   // DC gain 1
  EXPECT_NEAR(fir_at(x, 7, c.analysis_high), 0.0, 1e-12);  // DC gain 0
}

TEST(FirAtFixed, MatchesExactIntegerArithmetic) {
  const auto f = Dwt97FirFixedCoeffs::rounded(8);
  std::vector<std::int64_t> x = {10, -20, 30, -40, 50, -60, 70, -80};
  for (std::ptrdiff_t p = 0; p < 8; ++p) {
    std::int64_t acc = 0;
    for (int k = -4; k <= 4; ++k) {
      acc += f.analysis_low[static_cast<std::size_t>(k + 4)] *
             x[mirror_index(p + k, x.size())];
    }
    EXPECT_EQ(fir_at_fixed(x, p, f.analysis_low, 8), acc >> 8);
  }
}

}  // namespace
}  // namespace dwt::dsp
