#include "dsp/lifting_coeffs.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwt::dsp {
namespace {

TEST(LiftingCoeffs, MatchesPaperTable1FloatingColumn) {
  const LiftingCoeffs& c = LiftingCoeffs::daubechies97();
  EXPECT_NEAR(c.alpha, -1.586134342, 1e-9);
  EXPECT_NEAR(c.beta, -0.052980118, 1e-9);
  EXPECT_NEAR(c.gamma, 0.882911075, 1e-9);
  EXPECT_NEAR(c.delta, 0.443506852, 1e-9);
  EXPECT_NEAR(-c.k, -1.230174105, 1e-9);
  EXPECT_NEAR(1.0 / c.k, 0.812893066, 1e-9);
}

TEST(LiftingCoeffs, RoundedMatchesPaperIntegerColumn) {
  const LiftingFixedCoeffs f = LiftingFixedCoeffs::rounded(8);
  EXPECT_EQ(f.alpha.raw(), -406);
  EXPECT_EQ(f.beta.raw(), -14);
  EXPECT_EQ(f.gamma.raw(), 226);
  EXPECT_EQ(f.delta.raw(), 114);
  EXPECT_EQ(f.inv_k.raw(), 208);
  // -315: matches the paper's own binary column (its integer column prints
  // -314, inconsistent with the binary and with correct rounding).
  EXPECT_EQ(f.minus_k.raw(), -315);
}

TEST(LiftingCoeffs, InverseScalesAreConsistent) {
  const LiftingFixedCoeffs f = LiftingFixedCoeffs::rounded(8);
  EXPECT_EQ(f.k.raw(), 315);
  EXPECT_EQ(f.minus_inv_k.raw(), -208);
}

TEST(LiftingCoeffs, Table1RowsCompleteAndOrdered) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[1].name, "beta");
  EXPECT_EQ(rows[2].name, "gamma");
  EXPECT_EQ(rows[3].name, "delta");
  EXPECT_EQ(rows[4].name, "-k");
  EXPECT_EQ(rows[5].name, "1/k");
}

TEST(LiftingCoeffs, Table1BinaryColumn) {
  const auto rows = table1_rows();
  EXPECT_EQ(rows[0].binary, "10.01101010");
  EXPECT_EQ(rows[1].binary, "11.11110010");
  EXPECT_EQ(rows[2].binary, "00.11100010");
  EXPECT_EQ(rows[5].binary, "00.11010000");
}

TEST(LiftingCoeffs, BinaryColumnEncodesIntegerColumn) {
  // Internal consistency: the binary string is the two's complement of the
  // integer-rounded value (frac 8 + 2 integer bits).
  for (const Table1Row& row : table1_rows()) {
    std::int64_t v = 0;
    for (const char ch : row.binary) {
      if (ch == '.') continue;
      v = v * 2 + (ch - '0');
    }
    if (v >= 512) v -= 1024;  // 10-bit two's complement
    EXPECT_EQ(v, row.integer_rounded) << row.name;
  }
}

class CoeffPrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(CoeffPrecisionTest, RoundingErrorBoundedByHalfLsb) {
  const int f = GetParam();
  const LiftingFixedCoeffs fc = LiftingFixedCoeffs::rounded(f);
  const LiftingCoeffs& c = LiftingCoeffs::daubechies97();
  const double lsb = 1.0 / static_cast<double>(std::int64_t{1} << f);
  EXPECT_LE(std::abs(fc.alpha.to_double() - c.alpha), lsb / 2);
  EXPECT_LE(std::abs(fc.beta.to_double() - c.beta), lsb / 2);
  EXPECT_LE(std::abs(fc.gamma.to_double() - c.gamma), lsb / 2);
  EXPECT_LE(std::abs(fc.delta.to_double() - c.delta), lsb / 2);
  EXPECT_LE(std::abs(fc.minus_k.to_double() + c.k), lsb / 2);
  EXPECT_LE(std::abs(fc.inv_k.to_double() - 1.0 / c.k), lsb / 2);
}

INSTANTIATE_TEST_SUITE_P(WordLengths, CoeffPrecisionTest,
                         ::testing::Values(4, 5, 6, 7, 8, 10, 12, 14, 16));

}  // namespace
}  // namespace dwt::dsp
