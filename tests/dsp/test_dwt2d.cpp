#include "dsp/dwt2d.hpp"

#include <gtest/gtest.h>

#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"

namespace dwt::dsp {
namespace {

TEST(SubbandRect, FirstOctaveQuadrants) {
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kLL).x0, 0u);
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kLL).w, 32u);
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kHL).x0, 32u);
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kLH).y0, 16u);
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kHH).x0, 32u);
  EXPECT_EQ(subband_rect(64, 32, 1, Band::kHH).y0, 16u);
}

TEST(SubbandRect, DeeperOctavesShrink) {
  const SubbandRect r = subband_rect(64, 64, 3, Band::kLL);
  EXPECT_EQ(r.w, 8u);
  EXPECT_EQ(r.h, 8u);
}

TEST(SubbandRect, OddDimensionsSplitCeilFloor) {
  // 62 -> 31 -> 16 at octave 2; 64 -> 32 -> 16.
  const SubbandRect ll = subband_rect(62, 64, 2, Band::kLL);
  EXPECT_EQ(ll.w, 16u);
  EXPECT_EQ(ll.h, 16u);
  // 31 wide at octave 2: low 16, high 15.
  const SubbandRect hl = subband_rect(62, 64, 2, Band::kHL);
  EXPECT_EQ(hl.x0, 16u);
  EXPECT_EQ(hl.w, 15u);
  EXPECT_EQ(hl.h, 16u);
}

TEST(SubbandRect, RejectsBadArguments) {
  EXPECT_THROW((void)subband_rect(64, 64, 0, Band::kLL), std::invalid_argument);
  EXPECT_THROW((void)subband_rect(0, 64, 1, Band::kLL), std::invalid_argument);
}

class Dwt2dRoundTrip
    : public ::testing::TestWithParam<std::tuple<Method, int>> {};

TEST_P(Dwt2dRoundTrip, ReconstructsImage) {
  const auto [method, octaves] = GetParam();
  Image img = make_still_tone_image(64, 64, 17);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(method, img, octaves);
  dwt2d_inverse(method, img, octaves);
  level_shift_inverse(img);
  const double p = psnr(original, img);
  // Float methods reconstruct exactly; fixed ones accumulate about one LSB
  // of truncation noise per stage and octave (paper regime: ~37 dB).
  EXPECT_GT(p, is_fixed(method) ? 30.0 : 200.0)
      << to_string(method) << " octaves=" << octaves;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndOctaves, Dwt2dRoundTrip,
    ::testing::Combine(::testing::Values(Method::kFirFloat, Method::kFirFixed,
                                         Method::kLiftingFloat,
                                         Method::kLiftingFixed),
                       ::testing::Values(1, 2, 3)));

TEST(Dwt2d, EnergyCompactsIntoLL) {
  Image img = make_still_tone_image(64, 64, 23);
  level_shift_forward(img);
  dwt2d_forward(Method::kLiftingFloat, img, 2);
  double ll = 0, rest = 0;
  const SubbandRect r = subband_rect(64, 64, 2, Band::kLL);
  for (std::size_t y = 0; y < 64; ++y) {
    for (std::size_t x = 0; x < 64; ++x) {
      const double v = img.at(x, y) * img.at(x, y);
      if (x < r.w && y < r.h) {
        ll += v;
      } else {
        rest += v;
      }
    }
  }
  // A still-tone image concentrates most energy in 1/16 of the samples.
  EXPECT_GT(ll, 2.5 * rest);
}

TEST(Dwt2d, RoundCoefficientsRounds) {
  Image img(4, 4);
  img.at(0, 0) = 1.4;
  img.at(1, 0) = -1.6;
  round_coefficients(img);
  EXPECT_EQ(img.at(0, 0), 1.0);
  EXPECT_EQ(img.at(1, 0), -2.0);
}

TEST(Dwt2d, LevelShiftRoundTrips) {
  Image img = make_still_tone_image(16, 16, 3);
  const Image original = img;
  level_shift_forward(img);
  EXPECT_EQ(img.at(3, 3), original.at(3, 3) - 128.0);
  level_shift_inverse(img);
  EXPECT_EQ(img.at(3, 3), original.at(3, 3));
}

TEST(Dwt2d, OddRegionsRoundTrip) {
  Image img = make_still_tone_image(63, 41, 19);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(Method::kLiftingFloat, img, 3);
  dwt2d_inverse(Method::kLiftingFloat, img, 3);
  level_shift_inverse(img);
  EXPECT_GT(psnr(original, img), 200.0);
}

TEST(Dwt2d, DeepOctavesBottomOutAtOnePixel) {
  // 8 -> 4 -> 2 -> 1 -> 1: a 1 x 1 LL is a fixed point, so any octave
  // count is legal.
  Image img = make_still_tone_image(8, 8, 21);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(Method::kLiftingFloat, img, 5);
  dwt2d_inverse(Method::kLiftingFloat, img, 5);
  level_shift_inverse(img);
  EXPECT_GT(psnr(original, img), 200.0);
}

TEST(Dwt2d, CoefficientRoundingGivesTable2StylePsnr) {
  // The Table 2 procedure: transform, round coefficients to integers,
  // inverse -- this is what makes even the float pipeline lossy.
  Image img = make_still_tone_image(64, 64, 29);
  const Image original = img;
  level_shift_forward(img);
  dwt2d_forward(Method::kLiftingFloat, img, 3);
  round_coefficients(img);
  dwt2d_inverse(Method::kLiftingFloat, img, 3);
  level_shift_inverse(img);
  const double p = psnr(original, img.clamped_u8());
  EXPECT_GT(p, 30.0);
  EXPECT_LT(p, 60.0);
}

TEST(Dwt2d, SeparabilityRowsThenColumns) {
  // One octave on a rank-1 image equals the outer product of 1-D results.
  const std::size_t n = 16;
  std::vector<double> u(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = static_cast<double>((i * 7) % 13) - 6.0;
    v[i] = static_cast<double>((i * 5) % 11) - 5.0;
  }
  Image img(n, n);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) img.at(x, y) = u[x] * v[y];
  }
  dwt2d_forward_octave(Method::kLiftingFloat, img, n, n);
  const Subbands1d su = dwt1d_forward(Method::kLiftingFloat, u);
  const Subbands1d sv = dwt1d_forward(Method::kLiftingFloat, v);
  std::vector<double> ru(n), rv(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    ru[i] = su.low[i];
    ru[i + n / 2] = su.high[i];
    rv[i] = sv.low[i];
    rv[i + n / 2] = sv.high[i];
  }
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_NEAR(img.at(x, y), ru[x] * rv[y], 1e-9) << x << "," << y;
    }
  }
}

}  // namespace
}  // namespace dwt::dsp
