#include "fpga/tech_mapper.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"
#include "rtl/registers.hpp"
#include "rtl/simplify.hpp"

namespace dwt::fpga {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::CellKind;
using rtl::Netlist;

TEST(TechMapper, BehavioralAdderIsOneLePerBit) {
  // Paper: "an 8-bit adder is mapped onto just 8 Logic Elements".
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 8);
  const Bus bb = nl.add_input_bus("b", 8);
  nl.bind_output("y", b.add(a, bb, AdderStyle::kCarryChain, 8, "s"));
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.le_count(), 8u);
  EXPECT_EQ(m.chain_le_count(), 8u);
}

TEST(TechMapper, StructuralAdderIsTwoLesPerBit) {
  // Paper: "an 8-bit adder requires 16 Logic Elements" structurally.
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 8);
  const Bus bb = nl.add_input_bus("b", 8);
  nl.bind_output("y", b.add(a, bb, AdderStyle::kRippleGates, 8, "s"));
  const MappedNetlist m = map_to_apex(nl);
  // Sum and carry LUT per bit; the final bit needs no carry LUT.
  EXPECT_EQ(m.le_count(), 15u);
  EXPECT_EQ(m.chain_le_count(), 0u);
}

TEST(TechMapper, LutConesAbsorbSmallLogic) {
  // A 3-gate cone over 3 inputs fits one 4-LUT.
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto x = nl.add_cell(CellKind::kXor2, a, b);
  const auto y = nl.add_cell(CellKind::kAnd2, x, c);
  nl.bind_output("y", Bus{{y}});
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.le_count(), 1u);
  EXPECT_EQ(m.les[0].lut_inputs.size(), 3u);
}

TEST(TechMapper, ConeTruthTableIsCorrect) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto x = nl.add_cell(CellKind::kXor2, a, b);
  const auto y = nl.add_cell(CellKind::kAnd2, x, c);
  nl.bind_output("y", Bus{{y}});
  const MappedNetlist m = map_to_apex(nl);
  ASSERT_EQ(m.les.size(), 1u);
  const LogicElement& le = m.les[0];
  for (std::uint32_t i = 0; i < 8; ++i) {
    // Identify assignment per leaf order.
    bool va = false, vb = false, vc = false;
    for (std::size_t j = 0; j < le.lut_inputs.size(); ++j) {
      const bool bit = ((i >> j) & 1) != 0;
      if (le.lut_inputs[j] == a) va = bit;
      if (le.lut_inputs[j] == b) vb = bit;
      if (le.lut_inputs[j] == c) vc = bit;
    }
    const bool expect = (va != vb) && vc;
    EXPECT_EQ(((le.truth >> i) & 1) != 0, expect) << i;
  }
}

TEST(TechMapper, FfPacksIntoDrivingLut) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.add_cell(CellKind::kAnd2, a, b);
  const auto q = nl.add_cell(CellKind::kDff, x);
  nl.bind_output("y", Bus{{q}});
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.le_count(), 1u);
  EXPECT_TRUE(m.les[0].has_ff);
  EXPECT_EQ(m.les[0].ff_d, x);
}

TEST(TechMapper, FfWithSharedLutStaysSeparate) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.add_cell(CellKind::kAnd2, a, b);
  const auto q = nl.add_cell(CellKind::kDff, x);
  nl.bind_output("y", Bus{{q, x}});  // x also leaves the design
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.le_count(), 2u);  // LUT LE + standalone FF LE
}

TEST(TechMapper, DeadLogicIsSweptAway) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 8);
  const Bus s = b.add(a, a, AdderStyle::kCarryChain, 9, "s");
  const Bus r = b.reg(s, "r");
  // Only the low 4 bits are observed; the upper adder bits and FFs die.
  nl.bind_output("y", Bus{{r.bits[0], r.bits[1], r.bits[2], r.bits[3]}});
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_LE(m.le_count(), 5u);  // 4 chain bits (+1 carry LE tolerance)
}

TEST(TechMapper, RegisterBankPacksWithAdder) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 6);
  const Bus s = b.add(a, a, AdderStyle::kCarryChain, 7, "s");
  nl.bind_output("y", b.reg(s, "r"));
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.le_count(), 7u);  // FFs ride in the chain LEs
  EXPECT_EQ(m.ff_count(), 7u);
}

TEST(TechMapper, ProducerIndexConsistent) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus s = b.add(a, a, AdderStyle::kCarryChain, 5, "s");
  nl.bind_output("y", s);
  const MappedNetlist m = map_to_apex(nl);
  for (std::size_t i = 0; i < m.les.size(); ++i) {
    const LogicElement& le = m.les[i];
    if (le.lut_output != rtl::kNullNet) {
      EXPECT_EQ(m.producer[le.lut_output], static_cast<std::int32_t>(i));
    }
    if (le.carry_out != rtl::kNullNet) {
      EXPECT_EQ(m.producer[le.carry_out], static_cast<std::int32_t>(i));
    }
  }
}

TEST(TechMapper, FanoutCountsLoads) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto x = nl.add_cell(CellKind::kNot, a);
  const auto y1 = nl.add_cell(CellKind::kDff, x);
  const auto y2 = nl.add_cell(CellKind::kDff, x);
  nl.bind_output("y", Bus{{y1, y2}});
  const MappedNetlist m = map_to_apex(nl);
  EXPECT_EQ(m.fanout[x], 2u);
}

TEST(TechMapper, ClusterPropagatesToLes) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  const Bus s = b.add(a, a, AdderStyle::kRippleGates, 5, "s");
  nl.bind_output("y", s);
  const MappedNetlist m = map_to_apex(rtl::simplify(nl));
  for (const LogicElement& le : m.les) {
    if (le.lut_output != rtl::kNullNet) {
      EXPECT_GE(le.cluster, 0);
    }
  }
}

}  // namespace
}  // namespace dwt::fpga
