#include "fpga/timing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rtl/builder.hpp"
#include "rtl/simplify.hpp"

namespace dwt::fpga {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::Netlist;

MappedNetlist map_adder_chain(Netlist& nl, AdderStyle style, int width,
                              int cascade, bool registered_out) {
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", width);
  const Bus c = nl.add_input_bus("b", width);
  Bus acc = b.add(a, c, style, width + 1, "s0");
  for (int i = 1; i < cascade; ++i) {
    acc = b.add(acc, a, style, acc.width() + 1, "s" + std::to_string(i));
  }
  nl.bind_output("y", registered_out ? b.reg(acc, "r") : acc);
  return map_to_apex(nl);
}

TEST(Timing, WiderAddersAreSlower) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl8, nl16;
  const MappedNetlist m8 = map_adder_chain(nl8, AdderStyle::kCarryChain, 8, 1, true);
  const MappedNetlist m16 = map_adder_chain(nl16, AdderStyle::kCarryChain, 16, 1, true);
  TimingAnalyzer t8(m8, p), t16(m16, p);
  EXPECT_GT(t16.analyze().critical_path_ns, t8.analyze().critical_path_ns);
}

TEST(Timing, CascadesAreSlowerThanSingleAdders) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl1, nl4;
  const MappedNetlist m1 = map_adder_chain(nl1, AdderStyle::kCarryChain, 8, 1, true);
  const MappedNetlist m4 = map_adder_chain(nl4, AdderStyle::kCarryChain, 8, 4, true);
  TimingAnalyzer t1(m1, p), t4(m4, p);
  const double one = t1.analyze().critical_path_ns;
  const double four = t4.analyze().critical_path_ns;
  // Each cascade crossing pays general routing + chain entry.
  EXPECT_GT(four, one + 2.0 * p.t_route_general);
}

TEST(Timing, CarryChainFasterThanLutRippleForWideAdders) {
  // The dedicated chain's advantage grows with width (0.22 ns/bit vs a LUT
  // level per bit); at the paper's ~10-20 bit widths the two are close --
  // the APEX cascade-entry cost dominates there, which is exactly why the
  // paper's design 4 kept up with design 2.
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nlc, nlg;
  const MappedNetlist mc = map_adder_chain(nlc, AdderStyle::kCarryChain, 28, 1, true);
  const MappedNetlist mg = map_adder_chain(nlg, AdderStyle::kRippleGates, 28, 1, true);
  TimingAnalyzer tc(mc, p), tg(mg, p);
  EXPECT_LT(tc.analyze().critical_path_ns, tg.analyze().critical_path_ns);
}

TEST(Timing, FmaxIsInverseOfCriticalPath) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl;
  const MappedNetlist m = map_adder_chain(nl, AdderStyle::kCarryChain, 8, 1, true);
  const TimingReport r = TimingAnalyzer(m, p).analyze();
  EXPECT_NEAR(r.fmax_mhz, 1000.0 / r.critical_path_ns, 1e-9);
}

TEST(Timing, RegisterCutsThePath) {
  // Registering between two adders shortens the worst register-to-register
  // path -- the essence of the paper's pipelined designs.
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist flat, piped;
  {
    Builder b(flat);
    const Bus a = flat.add_input_bus("a", 10);
    const Bus s1 = b.add(a, a, AdderStyle::kCarryChain, 11, "s1");
    const Bus s2 = b.add(s1, a, AdderStyle::kCarryChain, 12, "s2");
    flat.bind_output("y", b.reg(s2, "r"));
  }
  {
    Builder b(piped);
    const Bus a = piped.add_input_bus("a", 10);
    const Bus s1 = b.reg(b.add(a, a, AdderStyle::kCarryChain, 11, "s1"), "r1");
    const Bus s2 = b.add(s1, b.delay(a, 1, "d"), AdderStyle::kCarryChain, 12, "s2");
    piped.bind_output("y", b.reg(s2, "r2"));
  }
  const MappedNetlist mf = map_to_apex(flat);
  const MappedNetlist mp = map_to_apex(piped);
  const double tf = TimingAnalyzer(mf, p).analyze().critical_path_ns;
  const double tp = TimingAnalyzer(mp, p).analyze().critical_path_ns;
  EXPECT_LT(tp, tf);
}

TEST(Timing, CriticalPathTraceEndsAtWorstEndpoint) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl;
  const MappedNetlist m = map_adder_chain(nl, AdderStyle::kCarryChain, 8, 2, true);
  const TimingReport r = TimingAnalyzer(m, p).analyze();
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_EQ(r.critical_path.back(), r.worst_endpoint);
  // Arrivals must be non-decreasing along the traced path.
  TimingAnalyzer t2(m, p);
  (void)t2.analyze();
  double prev = -1.0;
  for (const rtl::NetId n : r.critical_path) {
    const double a = t2.arrival(n);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(Timing, PurelyCombinationalPathUsesOutputEndpoint) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl;
  const MappedNetlist m = map_adder_chain(nl, AdderStyle::kCarryChain, 8, 1,
                                          /*registered_out=*/false);
  const TimingReport r = TimingAnalyzer(m, p).analyze();
  EXPECT_GT(r.critical_path_ns, 0.0);
}

TEST(Timing, AdderModelPrefixBeatsRippleAt16Bits) {
  // The frontier claim at the paper's 16-bit internal precision: every
  // parallel-prefix architecture's closed-form critical path undercuts the
  // ripple-gates realization (O(log w) LUT levels vs O(w)).
  const auto& p = ApexDeviceParams::apex20ke();
  const double ripple =
      adder_critical_path_ns(rtl::AdderArch::kRippleGates, 16, p);
  for (const rtl::AdderArch arch : rtl::prefix_adder_archs()) {
    EXPECT_LT(adder_critical_path_ns(arch, 16, p), ripple)
        << rtl::adder_name(arch);
  }
}

TEST(Timing, AdderModelScalesLogarithmicallyVsLinearly) {
  // Doubling the width from 16 to 32 bits should nearly double the ripple
  // path but grow a Kogge-Stone path by only one prefix level.
  const auto& p = ApexDeviceParams::apex20ke();
  const double r16 = adder_critical_path_ns(rtl::AdderArch::kRippleGates, 16, p);
  const double r32 = adder_critical_path_ns(rtl::AdderArch::kRippleGates, 32, p);
  const double k16 = adder_critical_path_ns(rtl::AdderArch::kKoggeStone, 16, p);
  const double k32 = adder_critical_path_ns(rtl::AdderArch::kKoggeStone, 32, p);
  EXPECT_GT(r32 / r16, 1.8);
  EXPECT_LT(k32 / k16, 1.4);
}

TEST(Timing, AdderModelRejectsBadWidth) {
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_THROW((void)adder_critical_path_ns(rtl::AdderArch::kKoggeStone, 0, p),
               std::invalid_argument);
}

TEST(Timing, StaConfirmsPrefixBeatsRippleGatesAt16Bits) {
  // The structural STA over the mapped netlists must agree with the closed
  // form: a 16-bit Kogge-Stone adder clears the ripple-gates one.
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nlr, nlk;
  const MappedNetlist mr =
      map_adder_chain(nlr, AdderStyle::kRippleGates, 16, 1, true);
  const MappedNetlist mk =
      map_adder_chain(nlk, AdderStyle::kKoggeStone, 16, 1, true);
  TimingAnalyzer tr(mr, p), tk(mk, p);
  EXPECT_LT(tk.analyze().critical_path_ns, tr.analyze().critical_path_ns);
}

TEST(Timing, ToStringIsInformative) {
  const auto& p = ApexDeviceParams::apex20ke();
  Netlist nl;
  const MappedNetlist m = map_adder_chain(nl, AdderStyle::kCarryChain, 8, 1, true);
  const TimingReport r = TimingAnalyzer(m, p).analyze();
  EXPECT_NE(r.to_string(nl).find("critical path"), std::string::npos);
}

}  // namespace
}  // namespace dwt::fpga
