#include "fpga/mapped_sim.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "rtl/builder.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/registers.hpp"
#include "rtl/simplify.hpp"
#include "rtl/simulator.hpp"

namespace dwt::fpga {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::Netlist;

TEST(MappedSim, AgreesWithRtlSimulatorOnAdders) {
  // The mapped netlist must be functionally identical to the RTL netlist:
  // this validates both the LUT truth tables and the chain mapping.
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 7);
  const Bus c = nl.add_input_bus("b", 7);
  const Bus s = b.add(a, c, AdderStyle::kCarryChain, 8, "s");
  const Bus d = b.sub(a, c, AdderStyle::kRippleGates, 8, "d");
  nl.bind_output("s", b.reg(s, "rs"));
  nl.bind_output("d", b.reg(d, "rd"));
  const MappedNetlist m = map_to_apex(nl);
  rtl::Simulator ref(nl);
  MappedActivitySim sim(m);
  common::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t va = rng.uniform(-64, 63);
    const std::int64_t vb = rng.uniform(-64, 63);
    ref.set_bus(a, va);
    ref.set_bus(c, vb);
    ref.step();
    sim.set_bus(a, va);
    sim.set_bus(c, vb);
    sim.cycle();
    EXPECT_EQ(sim.read_bus(nl.output("s")), ref.read_bus(nl.output("s")));
    EXPECT_EQ(sim.read_bus(nl.output("d")), ref.read_bus(nl.output("d")));
  }
}

TEST(MappedSim, AgreesOnPipelinedMultiplier) {
  Netlist nl;
  Builder b(nl);
  rtl::Pipeliner p(b, true);
  const rtl::Word x = rtl::word_input(nl, "x", 8);
  const rtl::Word y = rtl::shiftadd_multiply(
      p, x, rtl::make_shiftadd_plan(-406, rtl::Recoding::kBinaryWithReuse),
      AdderStyle::kCarryChain, rtl::SumStructure::kSequential, "m");
  nl.bind_output("y", y.bus);
  const Netlist opt = rtl::simplify(nl);
  const MappedNetlist m = map_to_apex(opt);
  rtl::Simulator ref(opt);
  MappedActivitySim sim(m);
  const Bus in = opt.find_input_bus("x");
  const Bus out = opt.output("y");
  common::Rng rng(12);
  for (int i = 0; i < 80; ++i) {
    const std::int64_t v = rng.uniform(-128, 127);
    ref.set_bus(in, v);
    sim.set_bus(in, v);
    ref.step();
    sim.cycle();
    EXPECT_EQ(sim.read_bus(out), ref.read_bus(out)) << i;
  }
}

TEST(MappedSim, CountsMoreTogglesInDeeperLogic) {
  auto build = [](int cascade) {
    auto nl = std::make_unique<Netlist>();
    Builder b(*nl);
    const Bus a = nl->add_input_bus("a", 8);
    Bus acc = b.add(a, a, AdderStyle::kCarryChain, 9, "s0");
    for (int i = 1; i < cascade; ++i) {
      acc = b.add(acc, a, AdderStyle::kCarryChain, acc.width() + 1,
                  "s" + std::to_string(i));
    }
    nl->bind_output("y", b.reg(acc, "r"));
    return nl;
  };
  const auto run = [](const Netlist& nl) {
    const MappedNetlist m = map_to_apex(nl);
    MappedActivitySim sim(m);
    const Bus in = nl.find_input_bus("a");
    common::Rng rng(5);
    for (int t = 0; t < 300; ++t) {
      sim.set_bus(in, rng.uniform(-128, 127));
      sim.cycle();
    }
    // Transitions per cycle per LE output.
    double total = 0;
    std::size_t nets = 0;
    for (const LogicElement& le : m.les) {
      if (le.lut_output != rtl::kNullNet) {
        total += sim.stats().rate(le.lut_output);
        ++nets;
      }
    }
    return total / static_cast<double>(nets);
  };
  const auto shallow = build(1);
  const auto deep = build(6);
  EXPECT_GT(run(*deep), run(*shallow));
}

TEST(MappedSim, StatsAndReset) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  nl.bind_output("y", b.reg(a, "r"));
  const MappedNetlist m = map_to_apex(nl);
  MappedActivitySim sim(m);
  sim.set_bus(a, 5);
  sim.cycle();
  sim.set_bus(a, -5);
  sim.cycle();
  EXPECT_EQ(sim.stats().cycles, 2u);
  EXPECT_GT(sim.stats().total_toggles, 0u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().cycles, 0u);
  EXPECT_EQ(sim.stats().total_toggles, 0u);
}

TEST(MappedSim, InputValidation) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 4);
  nl.bind_output("y", b.reg(a, "r"));
  const MappedNetlist m = map_to_apex(nl);
  MappedActivitySim sim(m);
  EXPECT_THROW(sim.set_bus(a, 1000), std::invalid_argument);
  EXPECT_THROW(sim.set_input(nl.output("y").bits[0], true),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::fpga
