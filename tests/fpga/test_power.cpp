#include "fpga/power.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpga/mapped_sim.hpp"
#include "rtl/builder.hpp"
#include "rtl/compiled/compiled_simulator.hpp"

namespace dwt::fpga {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::Netlist;

struct Harness {
  Netlist nl;
  Bus in;
  Bus out;
  MappedNetlist mapped;

  explicit Harness(int cascade) {
    Builder b(nl);
    in = nl.add_input_bus("a", 8);
    Bus acc = b.add(in, in, AdderStyle::kCarryChain, 9, "s0");
    for (int i = 1; i < cascade; ++i) {
      acc = b.add(acc, in, AdderStyle::kCarryChain, acc.width() + 1,
                  "s" + std::to_string(i));
    }
    out = b.reg(acc, "r");
    nl.bind_output("y", out);
    mapped = map_to_apex(nl);
  }

  rtl::ActivityStats run(std::uint64_t seed, int cycles) {
    MappedActivitySim sim(mapped);
    common::Rng rng(seed);
    for (int t = 0; t < cycles; ++t) {
      sim.set_bus(in, rng.uniform(-128, 127));
      sim.cycle();
    }
    return sim.stats();
  }

  /// Batched zero-delay activity: 64 random vector streams in one compiled
  /// pass, the workload estimate_power_batched consumes.
  rtl::ActivityStats run_batched(std::uint64_t seed, int cycles) {
    rtl::compiled::CompiledSimulator sim(nl);
    sim.enable_activity();
    common::Rng rng(seed);
    for (int t = 0; t < cycles; ++t) {
      for (unsigned lane = 0; lane < rtl::compiled::kLanes; ++lane) {
        sim.set_bus(in, lane, rng.uniform(-128, 127));
      }
      sim.step();
    }
    return sim.activity_stats();
  }
};

TEST(Power, ScalesLinearlyWithFrequency) {
  Harness h(2);
  const auto stats = h.run(1, 200);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown at15 = estimate_power(h.mapped, stats, p, 15.0);
  const PowerBreakdown at30 = estimate_power(h.mapped, stats, p, 30.0);
  EXPECT_NEAR(at30.logic_mw, 2.0 * at15.logic_mw, 1e-9);
  EXPECT_NEAR(at30.clock_mw, 2.0 * at15.clock_mw, 1e-9);
  EXPECT_DOUBLE_EQ(at30.static_mw, at15.static_mw);
}

TEST(Power, MoreActivityMeansMorePower) {
  Harness h(2);
  const auto quiet = [&] {
    MappedActivitySim sim(h.mapped);
    for (int t = 0; t < 200; ++t) {
      sim.set_bus(h.in, 1);  // constant input: nearly no switching
      sim.cycle();
    }
    return sim.stats();
  }();
  const auto busy = h.run(2, 200);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_GT(estimate_power(h.mapped, busy, p, 15.0).logic_mw,
            estimate_power(h.mapped, quiet, p, 15.0).logic_mw);
}

TEST(Power, DeepCascadeBurnsMoreThanShallow) {
  Harness shallow(1), deep(5);
  const auto ss = shallow.run(3, 300);
  const auto ds = deep.run(3, 300);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_GT(estimate_power(deep.mapped, ds, p, 15.0).logic_mw,
            estimate_power(shallow.mapped, ss, p, 15.0).logic_mw);
}

TEST(Power, BreakdownSumsToTotal) {
  Harness h(2);
  const auto stats = h.run(4, 100);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown pb = estimate_power(h.mapped, stats, p, 15.0);
  EXPECT_NEAR(pb.total_mw(), pb.logic_mw + pb.clock_mw + pb.static_mw, 1e-12);
  EXPECT_GT(pb.logic_mw, 0.0);
  EXPECT_GT(pb.clock_mw, 0.0);
  EXPECT_EQ(pb.static_mw, p.static_mw);
}

TEST(Power, RejectsDegenerateInputs) {
  Harness h(1);
  const auto stats = h.run(5, 10);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_THROW((void)estimate_power(h.mapped, rtl::ActivityStats{}, p, 15.0),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_power(h.mapped, stats, p, 0.0), std::invalid_argument);
}

TEST(Power, BatchedEstimateMatchesBaseAtUnityMargin) {
  Harness h(2);
  const auto stats = h.run_batched(8, 50);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown base = estimate_power(h.mapped, stats, p, 15.0);
  const PowerBreakdown batched =
      estimate_power_batched(h.mapped, stats, p, 15.0);
  EXPECT_DOUBLE_EQ(batched.logic_mw, base.logic_mw);
  EXPECT_DOUBLE_EQ(batched.clock_mw, base.clock_mw);
  EXPECT_DOUBLE_EQ(batched.total_mw(), base.total_mw());
}

TEST(Power, BatchedGlitchMarginScalesLogicOnly) {
  Harness h(2);
  const auto stats = h.run_batched(9, 50);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown base = estimate_power(h.mapped, stats, p, 15.0);
  const PowerBreakdown margined =
      estimate_power_batched(h.mapped, stats, p, 15.0, 1.3);
  EXPECT_NEAR(margined.logic_mw, 1.3 * base.logic_mw, 1e-9);
  EXPECT_DOUBLE_EQ(margined.clock_mw, base.clock_mw);
  EXPECT_DOUBLE_EQ(margined.static_mw, base.static_mw);
  EXPECT_THROW((void)estimate_power_batched(h.mapped, stats, p, 15.0, 0.5),
               std::invalid_argument);
}

TEST(Power, BatchedActivityTracksUnitDelayWorkload) {
  // The zero-delay batched stats are a glitch-free lower bound on the
  // unit-delay workload's switching; both must light up the same design.
  Harness h(3);
  const auto batched = h.run_batched(10, 100);
  const auto& p = ApexDeviceParams::apex20ke();
  const double mw = estimate_power(h.mapped, batched, p, 15.0).logic_mw;
  EXPECT_GT(mw, 0.0);
  EXPECT_GT(mean_activity(h.mapped, batched), 0.05);
}

TEST(Power, MeanActivityPositiveUnderStimulus) {
  Harness h(2);
  const auto stats = h.run(6, 200);
  EXPECT_GT(mean_activity(h.mapped, stats), 0.05);
}

TEST(Power, ToStringMentionsUnits) {
  Harness h(1);
  const auto stats = h.run(7, 50);
  const auto& p = ApexDeviceParams::apex20ke();
  const std::string s = estimate_power(h.mapped, stats, p, 15.0).to_string();
  EXPECT_NE(s.find("mW"), std::string::npos);
  EXPECT_NE(s.find("MHz"), std::string::npos);
}

}  // namespace
}  // namespace dwt::fpga
