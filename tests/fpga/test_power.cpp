#include "fpga/power.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpga/mapped_sim.hpp"
#include "rtl/builder.hpp"

namespace dwt::fpga {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::Netlist;

struct Harness {
  Netlist nl;
  Bus in;
  Bus out;
  MappedNetlist mapped;

  explicit Harness(int cascade) {
    Builder b(nl);
    in = nl.add_input_bus("a", 8);
    Bus acc = b.add(in, in, AdderStyle::kCarryChain, 9, "s0");
    for (int i = 1; i < cascade; ++i) {
      acc = b.add(acc, in, AdderStyle::kCarryChain, acc.width() + 1,
                  "s" + std::to_string(i));
    }
    out = b.reg(acc, "r");
    nl.bind_output("y", out);
    mapped = map_to_apex(nl);
  }

  rtl::ActivityStats run(std::uint64_t seed, int cycles) {
    MappedActivitySim sim(mapped);
    common::Rng rng(seed);
    for (int t = 0; t < cycles; ++t) {
      sim.set_bus(in, rng.uniform(-128, 127));
      sim.cycle();
    }
    return sim.stats();
  }
};

TEST(Power, ScalesLinearlyWithFrequency) {
  Harness h(2);
  const auto stats = h.run(1, 200);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown at15 = estimate_power(h.mapped, stats, p, 15.0);
  const PowerBreakdown at30 = estimate_power(h.mapped, stats, p, 30.0);
  EXPECT_NEAR(at30.logic_mw, 2.0 * at15.logic_mw, 1e-9);
  EXPECT_NEAR(at30.clock_mw, 2.0 * at15.clock_mw, 1e-9);
  EXPECT_DOUBLE_EQ(at30.static_mw, at15.static_mw);
}

TEST(Power, MoreActivityMeansMorePower) {
  Harness h(2);
  const auto quiet = [&] {
    MappedActivitySim sim(h.mapped);
    for (int t = 0; t < 200; ++t) {
      sim.set_bus(h.in, 1);  // constant input: nearly no switching
      sim.cycle();
    }
    return sim.stats();
  }();
  const auto busy = h.run(2, 200);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_GT(estimate_power(h.mapped, busy, p, 15.0).logic_mw,
            estimate_power(h.mapped, quiet, p, 15.0).logic_mw);
}

TEST(Power, DeepCascadeBurnsMoreThanShallow) {
  Harness shallow(1), deep(5);
  const auto ss = shallow.run(3, 300);
  const auto ds = deep.run(3, 300);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_GT(estimate_power(deep.mapped, ds, p, 15.0).logic_mw,
            estimate_power(shallow.mapped, ss, p, 15.0).logic_mw);
}

TEST(Power, BreakdownSumsToTotal) {
  Harness h(2);
  const auto stats = h.run(4, 100);
  const auto& p = ApexDeviceParams::apex20ke();
  const PowerBreakdown pb = estimate_power(h.mapped, stats, p, 15.0);
  EXPECT_NEAR(pb.total_mw(), pb.logic_mw + pb.clock_mw + pb.static_mw, 1e-12);
  EXPECT_GT(pb.logic_mw, 0.0);
  EXPECT_GT(pb.clock_mw, 0.0);
  EXPECT_EQ(pb.static_mw, p.static_mw);
}

TEST(Power, RejectsDegenerateInputs) {
  Harness h(1);
  const auto stats = h.run(5, 10);
  const auto& p = ApexDeviceParams::apex20ke();
  EXPECT_THROW(estimate_power(h.mapped, rtl::ActivityStats{}, p, 15.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_power(h.mapped, stats, p, 0.0), std::invalid_argument);
}

TEST(Power, MeanActivityPositiveUnderStimulus) {
  Harness h(2);
  const auto stats = h.run(6, 200);
  EXPECT_GT(mean_activity(h.mapped, stats), 0.05);
}

TEST(Power, ToStringMentionsUnits) {
  Harness h(1);
  const auto stats = h.run(7, 50);
  const auto& p = ApexDeviceParams::apex20ke();
  const std::string s = estimate_power(h.mapped, stats, p, 15.0).to_string();
  EXPECT_NE(s.find("mW"), std::string::npos);
  EXPECT_NE(s.find("MHz"), std::string::npos);
}

}  // namespace
}  // namespace dwt::fpga
