// Arbitrary-dimension coverage: every signal length 1..33 (both parities)
// through the dsp models and the hardware stream runners on all five
// designs, odd 2-D planes through the transforms, the codec, and the tile
// pipeline -- including the 129x97 acceptance image.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/codec.hpp"
#include "common/rng.hpp"
#include "dsp/dwt1d.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/dwt53.hpp"
#include "dsp/dwt97_lifting_fixed.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "hw/designs.hpp"
#include "hw/dwt2d_system.hpp"
#include "hw/inverse_lifting_datapath.hpp"
#include "hw/lifting53_datapath.hpp"
#include "hw/stream_runner.hpp"
#include "hw/tile_scheduler.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/simulator.hpp"

namespace dwt {
namespace {

std::vector<std::int64_t> random_samples(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int64_t> x(n);
  for (auto& v : x) v = rng.uniform(-128, 127);
  return x;
}

// Natural-image samples stay inside the paper's section-3.1 register
// envelopes, which the paper-width designs require for bit-true operation
// (full-range random data can clamp; see test_lifting_datapath.cpp).
std::vector<std::int64_t> image_samples(std::size_t n, std::uint64_t seed) {
  const dsp::Image img =
      dsp::make_still_tone_image(128, (n + 127) / 128, seed);
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (const double v : img.data()) {
    if (out.size() == n) break;
    out.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return out;
}

// --- 1-D: every length 1..33 on every design, hw vs dsp bit-exact ---------

class OddLengthAllDesigns : public ::testing::TestWithParam<hw::DesignId> {};

TEST_P(OddLengthAllDesigns, StreamMatchesSoftwareForEveryLength) {
  const hw::BuiltDatapath dp = hw::build_design(GetParam());
  rtl::Simulator sim(dp.netlist);
  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  for (std::size_t n = 1; n <= 33; ++n) {
    const auto x = image_samples(n, 100 + n);
    const hw::StreamResult hwres = hw::run_stream(dp, sim, x);
    const auto swres = dsp::lifting97_forward_fixed(x, c);
    EXPECT_EQ(hwres.low, swres.low) << "n=" << n;
    EXPECT_EQ(hwres.high, swres.high) << "n=" << n;
    EXPECT_EQ(hwres.low.size(), (n + 1) / 2) << "n=" << n;
    EXPECT_EQ(hwres.high.size(), n / 2) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, OddLengthAllDesigns,
    ::testing::Values(hw::DesignId::kDesign1, hw::DesignId::kDesign2,
                      hw::DesignId::kDesign3, hw::DesignId::kDesign4,
                      hw::DesignId::kDesign5),
    [](const auto& info) {
      return "design" + std::to_string(static_cast<int>(info.param) + 1);
    });

TEST(OddLength, Stream53MatchesSoftwareForEveryLength) {
  const hw::BuiltDatapath53 dp = hw::build_lifting53_datapath({});
  rtl::Simulator sim(dp.netlist);
  for (std::size_t n = 1; n <= 33; ++n) {
    const auto x = random_samples(n, 200 + n);
    const hw::StreamResult hwres = hw::run_stream53(dp, sim, x);
    const dsp::LiftSubbands53 swres = dsp::lifting53_forward(x);
    EXPECT_EQ(hwres.low, swres.low) << "n=" << n;
    EXPECT_EQ(hwres.high, swres.high) << "n=" << n;
  }
}

TEST(OddLength, BatchLanesMatchInterpretedStreamOnOddSignal) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  rtl::Simulator ref(dp.netlist);
  const auto x = random_samples(27, 42);
  const hw::StreamResult golden = hw::run_stream(dp, ref, x);
  rtl::compiled::BatchFaultSession session(rtl::compiled::compile(dp.netlist));
  const auto lanes = hw::run_stream_batch(dp, session, x, /*lanes=*/4);
  ASSERT_EQ(lanes.size(), 4u);
  for (const hw::StreamResult& lane : lanes) {
    EXPECT_EQ(lane.low, golden.low);
    EXPECT_EQ(lane.high, golden.high);
  }
}

TEST(OddLength, InverseStreamAcceptsCeilFloorSubbands) {
  const hw::BuiltInverseDatapath dp = hw::build_inverse_lifting_datapath({});
  rtl::Simulator sim(dp.netlist);
  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  // Interior samples must match the software inverse (the harness's tail
  // boundary convention differs in the last window, as in the even tests).
  for (const std::size_t n : {9u, 21u, 33u}) {
    const auto x = image_samples(n, 300 + n);
    const auto sub = dsp::lifting97_forward_fixed(x, c);
    ASSERT_EQ(sub.low.size(), sub.high.size() + 1);
    const auto sw = dsp::lifting97_inverse_fixed(sub.low, sub.high, c);
    const hw::InverseStreamResult hwres =
        hw::run_stream_inverse(dp, sim, sub.low, sub.high);
    ASSERT_EQ(hwres.samples.size(), sw.size()) << "n=" << n;
    for (std::size_t i = 0; i + 4 < sw.size(); ++i) {
      EXPECT_EQ(hwres.samples[i], sw[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(OddLength, EveryLengthRoundTripsThroughEveryMethod) {
  for (std::size_t n = 1; n <= 33; ++n) {
    const auto xi = random_samples(n, 400 + n);
    const std::vector<double> x(xi.begin(), xi.end());
    for (const dsp::Method m :
         {dsp::Method::kFirFloat, dsp::Method::kLiftingFloat}) {
      const dsp::Subbands1d s = dsp::dwt1d_forward(m, x);
      EXPECT_EQ(s.low.size(), (n + 1) / 2);
      EXPECT_EQ(s.high.size(), n / 2);
      const std::vector<double> xr = dsp::dwt1d_inverse(m, s.low, s.high);
      ASSERT_EQ(xr.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(xr[i], x[i], 1e-9)
            << dsp::to_string(m) << " n=" << n << " i=" << i;
      }
    }
    // Reversible 5/3: exact integer reconstruction at every length.
    const dsp::LiftSubbands53 s53 = dsp::lifting53_forward(xi);
    EXPECT_EQ(dsp::lifting53_inverse(s53.low, s53.high), xi) << "n=" << n;
  }
}

// --- 2-D: all width/height parities through the transforms and codec ------

TEST(OddDimensions, AllParityPlanesRoundTripLossless53) {
  for (const std::size_t w : {1u, 2u, 3u, 8u, 13u, 32u, 33u}) {
    for (const std::size_t h : {1u, 2u, 5u, 8u, 21u, 32u, 33u}) {
      dsp::Image img = dsp::make_still_tone_image(w, h, w * 64 + h);
      dsp::round_coefficients(img);
      const dsp::Image original = img;
      dsp::level_shift_forward(img);
      dsp::dwt2d_forward(dsp::Method::kReversible53, img, 2);
      dsp::dwt2d_inverse(dsp::Method::kReversible53, img, 2);
      dsp::level_shift_inverse(img);
      EXPECT_EQ(img.data(), original.data()) << w << "x" << h;
    }
  }
}

TEST(OddDimensions, CodecLossless53RoundTripsOddImage) {
  dsp::Image original = dsp::make_still_tone_image(45, 27, 11);
  dsp::round_coefficients(original);
  codec::EncodeOptions opt;
  opt.mode = codec::CodecMode::kLossless53;
  opt.octaves = 3;
  const codec::EncodedImage enc = codec::encode_image(original, opt);
  const dsp::Image decoded = codec::decode_image(enc.bytes);
  ASSERT_EQ(decoded.width(), original.width());
  ASSERT_EQ(decoded.height(), original.height());
  EXPECT_EQ(decoded.data(), original.data());
}

// --- The acceptance image: 129 x 97 ---------------------------------------

TEST(OddDimensions, Acceptance129x97LosslessAndQuantized) {
  dsp::Image original = dsp::make_still_tone_image(129, 97, 2005);
  dsp::round_coefficients(original);

  // Lossless through the reversible 5/3 codec path.
  codec::EncodeOptions lossless;
  lossless.mode = codec::CodecMode::kLossless53;
  lossless.octaves = 3;
  const dsp::Image dec53 =
      codec::decode_image(codec::encode_image(original, lossless).bytes);
  EXPECT_EQ(dec53.data(), original.data());

  // Quantized 9/7: the odd-size plane must not cost more than 1 dB against
  // the even-size crop of the same content at the same quantizer step.
  codec::EncodeOptions lossy;
  lossy.mode = codec::CodecMode::kLossy97;
  lossy.octaves = 3;
  lossy.base_step = 4.0;
  const dsp::Image dec97 =
      codec::decode_image(codec::encode_image(original, lossy).bytes);
  const double psnr_odd = dsp::psnr(original, dec97);

  const dsp::Image even = original.crop(128, 96);
  const dsp::Image dec_even =
      codec::decode_image(codec::encode_image(even, lossy).bytes);
  const double psnr_even = dsp::psnr(even, dec_even);
  EXPECT_GT(psnr_odd, 30.0);
  EXPECT_GT(psnr_odd, psnr_even - 1.0)
      << "odd=" << psnr_odd << " even=" << psnr_even;
}

TEST(OddDimensions, Acceptance129x97TileParallelMatchesSingleStream) {
  dsp::Image plane = dsp::make_still_tone_image(129, 97, 7);
  dsp::level_shift_forward(plane);
  dsp::round_coefficients(plane);
  const dsp::Image source = plane;

  // Single-stream runner: one tile covering the whole plane.
  hw::TileOptions whole;
  whole.tile_w = 129;
  whole.tile_h = 97;
  whole.octaves = 2;
  whole.threads = 1;
  dsp::Image single = source;
  (void)hw::tile_forward(single, whole);
  dsp::Image plain = source;
  dsp::dwt2d_forward(dsp::Method::kLiftingFixed, plain, 2);
  EXPECT_EQ(single.data(), plain.data());

  // Tile-parallel runner: byte-identical at every thread count.
  hw::TileOptions tiled;
  tiled.octaves = 2;
  tiled.threads = 1;
  dsp::Image ref = source;
  (void)hw::tile_forward(ref, tiled);
  for (const unsigned threads : {2u, 8u}) {
    tiled.threads = threads;
    dsp::Image out = source;
    (void)hw::tile_forward(out, tiled);
    EXPECT_EQ(out.data(), ref.data()) << "threads=" << threads;
  }

  // And the tiled plane reconstructs (fixed-point truncation noise only,
  // the paper's ~37 dB regime).
  tiled.threads = 0;
  dsp::Image back = ref;
  (void)hw::tile_inverse(back, tiled);
  EXPECT_GT(dsp::psnr(source, back), 30.0);
}

}  // namespace
}  // namespace dwt
