// Randomized-vector differential fuzz: the compiled bit-parallel engine must
// match the interpreted rtl::Simulator on EVERY net of EVERY cycle, for all
// five Table 3 designs and their TMR/parity-hardened variants.  Seeds are
// fixed, so a failure names a reproducible (net, lane, cycle).
#include <gtest/gtest.h>

#include "hw/designs.hpp"
#include "rtl/compiled/equivalence.hpp"
#include "rtl/harden.hpp"

namespace dwt {
namespace {

TEST(CompiledEquivalence, AllFiveDesignsMatchInterpreted) {
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    const hw::BuiltDatapath dp = hw::build_design(spec.id);
    const auto report = rtl::compiled::check_equivalence(
        dp.netlist, /*cycles=*/32, /*seed=*/2005, /*lanes_to_check=*/2);
    EXPECT_TRUE(report.ok) << spec.name << ": " << report.mismatch;
    EXPECT_EQ(report.cycles, 32u);
    EXPECT_EQ(report.lanes_checked, 2u);
    EXPECT_GT(report.nets_compared, 0u);
  }
}

TEST(CompiledEquivalence, HardenedVariantsMatchInterpreted) {
  const rtl::HardeningStyle styles[] = {rtl::HardeningStyle::kTmr,
                                        rtl::HardeningStyle::kParity};
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    for (const rtl::HardeningStyle style : styles) {
      const hw::BuiltDatapath dp = hw::build_design(spec.id);
      const rtl::Netlist hardened = rtl::apply_hardening(dp.netlist, style);
      const auto report = rtl::compiled::check_equivalence(
          hardened, /*cycles=*/16, /*seed=*/42, /*lanes_to_check=*/1);
      EXPECT_TRUE(report.ok)
          << spec.name << "+" << rtl::to_string(style) << ": "
          << report.mismatch;
    }
  }
}

TEST(CompiledEquivalence, DeterministicInSeed) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  const auto a = rtl::compiled::check_equivalence(dp.netlist, 16, 7, 1);
  const auto b = rtl::compiled::check_equivalence(dp.netlist, 16, 7, 1);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.nets_compared, b.nets_compared);
}

}  // namespace
}  // namespace dwt
