// Randomized-vector differential fuzz: the compiled bit-parallel engine must
// match the interpreted rtl::Simulator on EVERY net of EVERY cycle, for all
// five Table 3 designs and their TMR/parity-hardened variants -- at every
// tape optimization level (materialized nets only once the optimizer has
// run) and at every lane width of the templated engine.  Seeds are fixed,
// so a failure names a reproducible (net, lane, cycle).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/equivalence.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/harden.hpp"
#include "rtl/simulator.hpp"

namespace dwt {
namespace {

using rtl::compiled::OptLevel;

TEST(CompiledEquivalence, AllFiveDesignsMatchInterpreted) {
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    const hw::BuiltDatapath dp = hw::build_design(spec.id);
    const auto report = rtl::compiled::check_equivalence(
        dp.netlist, /*cycles=*/32, /*seed=*/2005, /*lanes_to_check=*/2);
    EXPECT_TRUE(report.ok) << spec.name << ": " << report.mismatch;
    EXPECT_EQ(report.cycles, 32u);
    EXPECT_EQ(report.lanes_checked, 2u);
    EXPECT_GT(report.nets_compared, 0u);
    EXPECT_EQ(report.nets_skipped, 0u);  // raw tapes materialize every net
  }
}

TEST(CompiledEquivalence, OptimizedTapesMatchInterpreted) {
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    const hw::BuiltDatapath dp = hw::build_design(spec.id);
    for (const OptLevel level : {OptLevel::kSafe, OptLevel::kFull}) {
      const auto report = rtl::compiled::check_equivalence(
          dp.netlist, /*cycles=*/16, /*seed=*/2005, /*lanes_to_check=*/1,
          level);
      EXPECT_TRUE(report.ok)
          << spec.name << " @" << to_string(level) << ": " << report.mismatch;
      EXPECT_GT(report.nets_compared, 0u);
    }
  }
}

TEST(CompiledEquivalence, HardenedVariantsMatchInterpreted) {
  const rtl::HardeningStyle styles[] = {rtl::HardeningStyle::kTmr,
                                        rtl::HardeningStyle::kParity};
  const OptLevel levels[] = {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull};
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    for (const rtl::HardeningStyle style : styles) {
      const hw::BuiltDatapath dp = hw::build_design(spec.id);
      const rtl::Netlist hardened = rtl::apply_hardening(dp.netlist, style);
      for (const OptLevel level : levels) {
        const auto report = rtl::compiled::check_equivalence(
            hardened, /*cycles=*/8, /*seed=*/42, /*lanes_to_check=*/1, level);
        EXPECT_TRUE(report.ok)
            << spec.name << "+" << rtl::to_string(style) << " @"
            << to_string(level) << ": " << report.mismatch;
      }
    }
  }
}

TEST(CompiledEquivalence, FaultOverlaysMatchInterpreted) {
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    const hw::BuiltDatapath dp = hw::build_design(spec.id);
    for (const OptLevel level : {OptLevel::kNone, OptLevel::kSafe}) {
      const auto report = rtl::compiled::check_fault_equivalence(
          dp.netlist, /*cycles=*/16, /*seed=*/7331, /*lanes_to_check=*/4,
          level);
      EXPECT_TRUE(report.ok)
          << spec.name << " @" << to_string(level) << ": " << report.mismatch;
      EXPECT_GT(report.nets_compared, 0u);
    }
  }
}

TEST(CompiledEquivalence, FaultOverlaysMatchOnHardenedParity) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign3);
  const rtl::Netlist hardened =
      rtl::apply_hardening(dp.netlist, rtl::HardeningStyle::kParity);
  for (const OptLevel level : {OptLevel::kNone, OptLevel::kSafe}) {
    const auto report = rtl::compiled::check_fault_equivalence(
        hardened, /*cycles=*/12, /*seed=*/99, /*lanes_to_check=*/3, level);
    EXPECT_TRUE(report.ok)
        << "design3+parity @" << to_string(level) << ": " << report.mismatch;
  }
}

TEST(CompiledEquivalence, FaultEquivalenceRejectsFullOpt) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign1);
  EXPECT_THROW((void)rtl::compiled::check_fault_equivalence(
                   dp.netlist, 8, 1, 1, OptLevel::kFull),
               std::invalid_argument);
}

/// Wide-engine differential: W words per slot, scalar interpreted replicas
/// replay sampled lanes across the whole 64*W-lane space.
template <unsigned W>
void expect_wide_matches(const rtl::Netlist& nl, OptLevel level,
                         std::uint64_t seed, const char* what) {
  using Block = rtl::compiled::LaneBlock<W>;
  constexpr unsigned kSample[] = {0, 64 * W - 1, 64 * W / 2 + 1};
  const std::vector<rtl::NetId>& pis = nl.primary_inputs();
  common::Rng rng(seed);

  rtl::compiled::WideSimulator<W> wide(rtl::compiled::compile(nl, level));
  std::vector<rtl::Simulator> scalar;
  for (unsigned i = 0; i < std::size(kSample); ++i) scalar.emplace_back(nl);

  for (std::uint64_t c = 0; c < 12; ++c) {
    for (const rtl::NetId pi : pis) {
      Block b;
      for (unsigned k = 0; k < W; ++k) b.w[k] = rng.next_u64();
      wide.set_input_block(pi, b);
      for (unsigned i = 0; i < std::size(kSample); ++i) {
        scalar[i].set_input(pi, b.get(kSample[i]));
      }
    }
    wide.step();
    for (rtl::Simulator& s : scalar) s.step();
    for (rtl::NetId n = 0; n < nl.net_count(); ++n) {
      if (!wide.tape().materialized(n)) continue;
      const Block got = wide.block(n);
      for (unsigned i = 0; i < std::size(kSample); ++i) {
        ASSERT_EQ(got.get(kSample[i]), scalar[i].value(n))
            << what << " W=" << W << " net " << n << " lane " << kSample[i]
            << " cycle " << c;
      }
    }
  }
}

TEST(CompiledEquivalence, WideLanesMatchInterpreted) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  for (const OptLevel level :
       {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull}) {
    expect_wide_matches<2>(dp.netlist, level, 11, "design2");
    expect_wide_matches<4>(dp.netlist, level, 13, "design2");
  }
  const hw::BuiltDatapath dp5 = hw::build_design(hw::DesignId::kDesign5);
  const rtl::Netlist hardened =
      rtl::apply_hardening(dp5.netlist, rtl::HardeningStyle::kTmr);
  expect_wide_matches<4>(hardened, OptLevel::kSafe, 17, "design5+tmr");
}

TEST(CompiledEquivalence, OptMeetsInstructionReductionTarget) {
  // The acceptance bar for the optimizer: >= 25% fewer tape instructions on
  // Designs 2-5 at the bench's max opt level (kFull).  kSafe is bounded by
  // the fault-overlay contract -- Designs 4/5 build adders from discrete
  // gates whose intermediates must stay forceable, so only a strict
  // improvement is required there.
  const hw::DesignId targets[] = {hw::DesignId::kDesign2, hw::DesignId::kDesign3,
                                  hw::DesignId::kDesign4,
                                  hw::DesignId::kDesign5};
  for (const hw::DesignId id : targets) {
    const hw::BuiltDatapath dp = hw::build_design(id);
    const auto raw = rtl::compiled::compile(dp.netlist);
    const auto safe = rtl::compiled::compile(dp.netlist, OptLevel::kSafe);
    const auto full = rtl::compiled::compile(dp.netlist, OptLevel::kFull);
    const auto reduction = [&](const auto& opt) {
      return 1.0 - static_cast<double>(opt->instrs().size()) /
                       static_cast<double>(raw->instrs().size());
    };
    EXPECT_GE(reduction(full), 0.25)
        << "design " << static_cast<int>(id) << " @O2: "
        << raw->instrs().size() << " -> " << full->instrs().size();
    EXPECT_GT(reduction(safe), 0.05)
        << "design " << static_cast<int>(id) << " @O1: "
        << raw->instrs().size() << " -> " << safe->instrs().size();
  }
}

/// Three execution tiers over one shared tape: the switch interpreter (the
/// semantic reference), the threaded-dispatch interpreter, and the native
/// x86-64 block.  Same stimulus into all three, every materialized net
/// word-compared every cycle.  On hosts where the native tier is
/// unsupported the third simulator demotes to threaded and the comparison
/// degrades to a (still meaningful) two-way check.
template <unsigned W>
void expect_tiers_match(const rtl::Netlist& nl,
                        const std::shared_ptr<const rtl::compiled::Tape>& tape,
                        std::uint64_t seed, const std::string& what) {
  using Block = rtl::compiled::LaneBlock<W>;
  using rtl::compiled::ExecTier;
  rtl::compiled::WideSimulator<W> ref(tape);
  rtl::compiled::WideSimulator<W> threaded(tape);
  rtl::compiled::WideSimulator<W> native(tape);
  ref.set_exec_tier(ExecTier::kSwitch);
  threaded.set_exec_tier(ExecTier::kThreaded);
  native.set_exec_tier(ExecTier::kNative);
  if (std::getenv("DWT_EXEC_TIER") == nullptr) {
    ASSERT_EQ(ref.exec_tier(), ExecTier::kSwitch);
    ASSERT_EQ(threaded.exec_tier(), ExecTier::kThreaded);
    if (rtl::compiled::native_supported(W)) {
      ASSERT_EQ(native.exec_tier(), ExecTier::kNative) << what;
    }
  }

  common::Rng rng(seed);
  for (std::uint64_t cycle = 0; cycle < 6; ++cycle) {
    for (const rtl::NetId pi : nl.primary_inputs()) {
      Block b;
      for (unsigned k = 0; k < W; ++k) b.w[k] = rng.next_u64();
      ref.set_input_block(pi, b);
      threaded.set_input_block(pi, b);
      native.set_input_block(pi, b);
    }
    ref.step();
    threaded.step();
    native.step();
    for (rtl::NetId n = 0; n < nl.net_count(); ++n) {
      if (!tape->materialized(n)) continue;
      const Block want = ref.block(n);
      const Block got_threaded = threaded.block(n);
      const Block got_native = native.block(n);
      for (unsigned k = 0; k < W; ++k) {
        ASSERT_EQ(want.w[k], got_threaded.w[k])
            << what << " W=" << W << " threaded tier, net " << n << " word "
            << k << " cycle " << cycle;
        ASSERT_EQ(want.w[k], got_native.w[k])
            << what << " W=" << W << " native tier, net " << n << " word "
            << k << " cycle " << cycle;
      }
    }
  }
}

TEST(CompiledEquivalence, ThreeWayTierMatrixMatches) {
  // The full seam matrix from the ISSUE: five designs x hardening x opt
  // level x lane width, interpreter vs threaded vs native.  Tapes are
  // width-independent, so each (netlist, level) compiles once and feeds
  // both widths.
  const rtl::HardeningStyle styles[] = {rtl::HardeningStyle::kNone,
                                        rtl::HardeningStyle::kTmr,
                                        rtl::HardeningStyle::kParity};
  const OptLevel levels[] = {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull};
  std::uint64_t seed = 808;
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    const hw::BuiltDatapath dp = hw::build_design(spec.id);
    for (const rtl::HardeningStyle style : styles) {
      const rtl::Netlist nl = style == rtl::HardeningStyle::kNone
                                  ? dp.netlist
                                  : rtl::apply_hardening(dp.netlist, style);
      for (const OptLevel level : levels) {
        const auto tape = rtl::compiled::compile(nl, level);
        const std::string what = std::string(spec.name) + "+" +
                                 rtl::to_string(style) + " @" +
                                 to_string(level);
        expect_tiers_match<1>(nl, tape, seed++, what);
        expect_tiers_match<4>(nl, tape, seed++, what);
      }
    }
  }
  // The 128-lane instantiation rides a spot check (native demotes to
  // threaded there unless AVX2 is present, same as production).
  const hw::BuiltDatapath dp3 = hw::build_design(hw::DesignId::kDesign3);
  const rtl::Netlist hardened =
      rtl::apply_hardening(dp3.netlist, rtl::HardeningStyle::kParity);
  expect_tiers_match<2>(hardened,
                        rtl::compiled::compile(hardened, OptLevel::kSafe),
                        seed, "design3+parity @O1");
}

TEST(CompiledEquivalence, AdderVariantsMatchInterpreted) {
  // The (design x adder) extension of the matrix: every prefix-adder
  // variant netlist must flow through the compiled engine unchanged --
  // plain equivalence on the raw tape, and fault overlays on the
  // overlay-safe tape (the campaigns run on exactly these netlists).
  for (const hw::DesignSpec& spec : hw::adder_variant_designs()) {
    const hw::BuiltDatapath dp = hw::build_lifting_datapath(spec.config);
    const auto report = rtl::compiled::check_equivalence(
        dp.netlist, /*cycles=*/16, /*seed=*/2005, /*lanes_to_check=*/1);
    EXPECT_TRUE(report.ok) << spec.name << ": " << report.mismatch;
    const auto faults = rtl::compiled::check_fault_equivalence(
        dp.netlist, /*cycles=*/12, /*seed=*/7331, /*lanes_to_check=*/2,
        OptLevel::kSafe);
    EXPECT_TRUE(faults.ok) << spec.name << ": " << faults.mismatch;
  }
}

TEST(CompiledEquivalence, AdderVariantTierAndHardeningSpotChecks) {
  // Prefix-adder netlists through the remaining seams: the three execution
  // tiers at every opt level, and the TMR/parity hardening transforms.
  const hw::BuiltDatapath ks = hw::build_lifting_datapath(hw::design_config(
      hw::DesignId::kDesign3, /*max_octaves=*/1, rtl::AdderArch::kKoggeStone));
  std::uint64_t seed = 909;
  for (const OptLevel level :
       {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull}) {
    expect_tiers_match<4>(ks.netlist,
                          rtl::compiled::compile(ks.netlist, level), seed++,
                          std::string("design3(ks) @") + to_string(level));
  }
  const rtl::Netlist tmr =
      rtl::apply_hardening(ks.netlist, rtl::HardeningStyle::kTmr);
  const auto tmr_report =
      rtl::compiled::check_equivalence(tmr, 8, 42, 1, OptLevel::kSafe);
  EXPECT_TRUE(tmr_report.ok) << "design3(ks)+tmr: " << tmr_report.mismatch;

  const hw::BuiltDatapath bk = hw::build_lifting_datapath(hw::design_config(
      hw::DesignId::kDesign5, /*max_octaves=*/1, rtl::AdderArch::kBrentKung));
  const rtl::Netlist parity =
      rtl::apply_hardening(bk.netlist, rtl::HardeningStyle::kParity);
  const auto parity_report = rtl::compiled::check_fault_equivalence(
      parity, 8, 99, 2, OptLevel::kSafe);
  EXPECT_TRUE(parity_report.ok)
      << "design5(bk)+parity: " << parity_report.mismatch;
}

TEST(CompiledEquivalence, DeterministicInSeed) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  const auto a = rtl::compiled::check_equivalence(dp.netlist, 16, 7, 1);
  const auto b = rtl::compiled::check_equivalence(dp.netlist, 16, 7, 1);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.nets_compared, b.nets_compared);
}

}  // namespace
}  // namespace dwt
