// Randomized cross-validation of the hardware substrate: generate random
// netlists (gates, adders of every AdderArch, multipliers, registers), then
// require that the zero-delay simulator, the unit-delay simulator, the
// technology mapper + mapped-netlist simulator, and the simplify() rewrite
// all agree cycle by cycle.  This is the strongest guard against mapper or
// rewrite bugs: any truth-table, packing, liveness or folding error shows up
// as a divergence.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpga/mapped_sim.hpp"
#include "fpga/tech_mapper.hpp"
#include "rtl/activity_sim.hpp"
#include "rtl/adders.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/simplify.hpp"
#include "rtl/simulator.hpp"

namespace dwt {
namespace {

using rtl::AdderStyle;
using rtl::Builder;
using rtl::Bus;
using rtl::Netlist;
using rtl::Pipeliner;
using rtl::Word;

/// Builds a random feed-forward datapath over two input buses.
Netlist random_netlist(std::uint64_t seed, Bus& in_a, Bus& in_b, int* depth) {
  common::Rng rng(seed);
  Netlist nl;
  Builder b(nl);
  const bool pipelined = rng.uniform(0, 1) == 1;
  Pipeliner p(b, pipelined, static_cast<int>(rng.uniform(1, 3)));
  const int wa = static_cast<int>(rng.uniform(3, 8));
  const int wb = static_cast<int>(rng.uniform(3, 8));
  Word a = rtl::word_input(nl, "a", wa);
  Word bw = rtl::word_input(nl, "b", wb);
  in_a = a.bus;
  in_b = bw.bus;

  std::vector<Word> values{a, bw};
  const int ops = static_cast<int>(rng.uniform(3, 10));
  for (int i = 0; i < ops; ++i) {
    const Word& x = values[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    const Word& y = values[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    // Draw over the whole architecture family, so every generator (chain,
    // ripple, and the three prefix networks) feeds the mapper/simplify/
    // simulator agreement matrix.
    const AdderStyle style = static_cast<AdderStyle>(
        rng.uniform(0, rtl::kAdderArchCount - 1));
    const std::string name = "op" + std::to_string(i);
    Word out;
    switch (rng.uniform(0, 4)) {
      case 0:
        out = rtl::word_add(p, x, y, style, name);
        break;
      case 1:
        out = rtl::word_sub(p, x, y, style, name);
        break;
      case 2:
        out = rtl::word_shl(b, x, static_cast<int>(rng.uniform(0, 3)));
        break;
      case 3:
        out = rtl::word_asr(b, x, static_cast<int>(rng.uniform(0, 2)));
        break;
      default: {
        const std::int64_t c = rng.uniform(-200, 200);
        if (c == 0) {
          out = rtl::word_add(p, x, y, style, name);
        } else {
          out = rtl::shiftadd_multiply(
              p, x, rtl::make_shiftadd_plan(c, rtl::Recoding::kBinary), style,
              rng.uniform(0, 1) == 0 ? rtl::SumStructure::kSequential
                                     : rtl::SumStructure::kTree,
              name);
        }
        break;
      }
    }
    // Keep widths bounded so the random walk cannot explode.
    if (out.bus.width() > 20) {
      out.bus = b.resize(out.bus, 20);
      out.range = common::Interval::signed_bits(20);
    }
    values.push_back(out);
  }
  Word result = values.back();
  result = p.stage(result, "r_out");
  nl.bind_output("y", result.bus);
  nl.validate();
  *depth = result.depth;
  return nl;
}

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, AllEnginesAgree) {
  Bus in_a, in_b;
  int depth = 0;
  const Netlist nl = random_netlist(GetParam(), in_a, in_b, &depth);
  const Netlist simplified = rtl::simplify(nl);
  const Bus sa = simplified.find_input_bus("a");
  const Bus sb = simplified.find_input_bus("b");
  const fpga::MappedNetlist mapped = fpga::map_to_apex(simplified);

  rtl::Simulator zero_delay(nl);
  rtl::ActivitySim unit_delay(nl);
  rtl::Simulator zero_delay_simplified(simplified);
  fpga::MappedActivitySim mapped_sim(mapped);

  common::Rng rng(GetParam() * 31 + 7);
  const std::int64_t la = -(std::int64_t{1} << (in_a.width() - 1));
  const std::int64_t ha = (std::int64_t{1} << (in_a.width() - 1)) - 1;
  const std::int64_t lb = -(std::int64_t{1} << (in_b.width() - 1));
  const std::int64_t hb = (std::int64_t{1} << (in_b.width() - 1)) - 1;
  for (int cycle = 0; cycle < 24; ++cycle) {
    const std::int64_t va = rng.uniform(la, ha);
    const std::int64_t vb = rng.uniform(lb, hb);
    zero_delay.set_bus(in_a, va);
    zero_delay.set_bus(in_b, vb);
    unit_delay.set_bus(in_a, va);
    unit_delay.set_bus(in_b, vb);
    zero_delay_simplified.set_bus(sa, va);
    zero_delay_simplified.set_bus(sb, vb);
    mapped_sim.set_bus(sa, va);
    mapped_sim.set_bus(sb, vb);
    zero_delay.step();
    unit_delay.cycle();
    zero_delay_simplified.step();
    mapped_sim.cycle();
    if (cycle < depth + 1) continue;  // pipeline warm-up
    const std::int64_t expected = zero_delay.read_bus(nl.output("y"));
    EXPECT_EQ(unit_delay.read_bus(nl.output("y")), expected)
        << "unit-delay diverged, cycle " << cycle;
    EXPECT_EQ(zero_delay_simplified.read_bus(simplified.output("y")), expected)
        << "simplify() diverged, cycle " << cycle;
    EXPECT_EQ(mapped_sim.read_bus(simplified.output("y")), expected)
        << "mapper diverged, cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace dwt
