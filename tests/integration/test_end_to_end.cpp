// Integration tests across the full stack: software transform quality
// (paper Table 2 shape), hardware/software bit-equality through the 2D
// system, and the explorer's reproduction of the paper's conclusions.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "hw/dwt2d_system.hpp"

namespace dwt {
namespace {

/// The Table 2 experiment: forward transform, coefficient rounding (the
/// integer storage a hardware pipeline implies), inverse transform, PSNR.
double table2_psnr(dsp::Method method, const dsp::Image& original,
                   int octaves) {
  dsp::Image plane = original;
  dsp::level_shift_forward(plane);
  dsp::dwt2d_forward(method, plane, octaves);
  dsp::round_coefficients(plane);
  dsp::dwt2d_inverse(method, plane, octaves);
  dsp::level_shift_inverse(plane);
  return dsp::psnr(original, plane.clamped_u8());
}

TEST(EndToEnd, Table2ShapeHolds) {
  // The paper's Table 2 rows all run an integer datapath; "floating point"
  // refers to the multiplier constants (kFirHwFloat / kLiftingHwFloat).
  const dsp::Image tile = dsp::make_still_tone_image(128, 128, 2005);
  const double fir_float = table2_psnr(dsp::Method::kFirHwFloat, tile, 3);
  const double fir_fixed = table2_psnr(dsp::Method::kFirFixed, tile, 3);
  const double lift_float = table2_psnr(dsp::Method::kLiftingHwFloat, tile, 3);
  const double lift_fixed = table2_psnr(dsp::Method::kLiftingFixed, tile, 3);
  // All four methods land in the same quality regime (paper: ~37 dB).
  for (const double p : {fir_float, fir_fixed, lift_float, lift_fixed}) {
    EXPECT_GT(p, 30.0);
    EXPECT_LT(p, 65.0);
  }
  // Integer-rounded coefficients cost less than 1 dB against the ideal
  // constants (the paper's headline Table 2 conclusion)...
  EXPECT_LT(fir_float - fir_fixed, 1.0);
  EXPECT_LT(lift_float - lift_fixed, 1.0);
  // ...and the FIR and lifting pipelines stay within 1 dB of each other
  // (paper: 37.48 vs 36.97).
  EXPECT_LT(std::abs(fir_fixed - lift_fixed), 1.0);
}

TEST(EndToEnd, HardwareTransformCompressesLikeSoftware) {
  // Run the full 2D hardware system, quantize, reconstruct in software,
  // and require photographic quality.
  const std::size_t n = 32;
  dsp::Image original = dsp::make_still_tone_image(n, n, 42);
  dsp::Image plane = original;
  dsp::level_shift_forward(plane);
  dsp::round_coefficients(plane);
  hw::Dwt2dSystem system(hw::DesignId::kDesign3, /*max_octaves=*/2);
  (void)system.transform(plane, 2);
  dsp::dwt2d_inverse(dsp::Method::kLiftingFixed, plane, 2);
  dsp::level_shift_inverse(plane);
  EXPECT_GT(dsp::psnr(original, plane.clamped_u8()), 35.0);
}

TEST(EndToEnd, ParetoFrontContainsPipelinedDesigns) {
  explore::Explorer ex;
  const auto evals = ex.evaluate_all();
  std::vector<explore::TradeoffPoint> points;
  for (const auto& e : evals) {
    points.push_back({e.spec.name,
                      static_cast<double>(e.report.logic_elements),
                      1000.0 / e.report.fmax_mhz, e.report.power_mw});
  }
  const auto front = pareto_front(points);
  // Design 2 (smallest) and design 3 (fastest) must be trade-off points.
  auto on_front = [&](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };
  EXPECT_TRUE(on_front(1));
  EXPECT_TRUE(on_front(2));
  // Design 4 is dominated in our model (design 2 is smaller, faster-or-
  // equal, and lower power).
  EXPECT_GE(front.size(), 2u);
}

TEST(EndToEnd, ThroughputRanksFollowFmax) {
  // Time to transform a 64x64 tile = cycles / fmax: the pipelined core
  // wins despite deeper latency.
  explore::Explorer ex;
  const auto d2 = ex.evaluate(hw::design_spec(hw::DesignId::kDesign2));
  const auto d3 = ex.evaluate(hw::design_spec(hw::DesignId::kDesign3));
  hw::Dwt2dSystem s2(hw::DesignId::kDesign2);
  hw::Dwt2dSystem s3(hw::DesignId::kDesign3);
  dsp::Image a = dsp::make_still_tone_image(64, 64, 3);
  dsp::level_shift_forward(a);
  dsp::round_coefficients(a);
  dsp::Image b = a;
  const auto st2 = s2.transform(a, 1);
  const auto st3 = s3.transform(b, 1);
  const double ms2 = st2.milliseconds_at(d2.report.fmax_mhz);
  const double ms3 = st3.milliseconds_at(d3.report.fmax_mhz);
  EXPECT_LT(ms3, ms2);
}

}  // namespace
}  // namespace dwt
