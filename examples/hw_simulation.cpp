// Gate-level hardware flow: elaborate design 3, verify it bit-for-bit
// against the software model on an image stream, dump a waveform (VCD) of
// the output ports, and export synthesizable structural Verilog -- the
// ASIC-portability endpoint the paper argues structural descriptions serve.
//
//   ./hw_simulation [design-number 1..5]
#include <cmath>
#include <cstdio>
#include <fstream>

#include "dsp/dwt97_lifting_fixed.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simulator.hpp"
#include "rtl/stats.hpp"
#include "rtl/vcd.hpp"
#include "rtl/verilog_writer.hpp"

int main(int argc, char** argv) {
  using namespace dwt;
  const int design_number = argc > 1 ? std::atoi(argv[1]) : 3;
  if (design_number < 1 || design_number > 5) {
    std::fprintf(stderr, "usage: %s [design 1..5]\n", argv[0]);
    return 1;
  }
  const auto id = static_cast<hw::DesignId>(design_number - 1);
  const hw::DesignSpec spec = hw::design_spec(id);
  std::printf("Elaborating %s: %s\n", spec.name.c_str(),
              spec.description.c_str());

  const hw::BuiltDatapath dp = hw::build_design(id);
  std::printf("  netlist: %s\n",
              rtl::compute_stats(dp.netlist).to_string().c_str());
  std::printf("  latency: %d cycles, one (even, odd) sample pair per cycle\n",
              dp.info.latency);

  // Stream one image row through the core and compare against the bit-true
  // software model.
  const dsp::Image img = dsp::make_still_tone_image(256, 1, 11);
  std::vector<std::int64_t> samples;
  for (const double v : img.data()) {
    samples.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  rtl::Simulator sim(dp.netlist);
  const hw::StreamResult hwres = hw::run_stream(dp, sim, samples);
  const auto swres = dsp::lifting97_forward_fixed(
      samples, dsp::LiftingFixedCoeffs::rounded(8));
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < swres.low.size(); ++i) {
    if (hwres.low[i] != swres.low[i] || hwres.high[i] != swres.high[i]) {
      ++mismatches;
    }
  }
  std::printf("  bit-true check vs software model: %zu mismatches over %zu "
              "coefficient pairs (%llu cycles)\n",
              mismatches, swres.low.size(),
              static_cast<unsigned long long>(hwres.cycles));

  // Waveform of the output ports (open with GTKWave).
  {
    rtl::Simulator wave_sim(dp.netlist);
    std::vector<rtl::NetId> traced = dp.out_low.bits;
    traced.insert(traced.end(), dp.out_high.bits.begin(),
                  dp.out_high.bits.end());
    rtl::VcdWriter vcd(dp.netlist, traced, "hw_simulation.vcd");
    for (std::size_t t = 0; t < 64; ++t) {
      wave_sim.set_bus(dp.in_even, samples[2 * t]);
      wave_sim.set_bus(dp.in_odd, samples[2 * t + 1]);
      wave_sim.step();
      vcd.sample(wave_sim, t * 10);
    }
  }
  std::printf("  wrote hw_simulation.vcd (64 cycles of the output ports)\n");

  // Structural Verilog export.
  {
    std::ofstream v("dwt_core.v");
    rtl::write_verilog(dp.netlist, "dwt_lifting_core", v);
  }
  std::printf("  wrote dwt_core.v (synthesizable structural Verilog)\n");
  return 0;
}
