// Lossy image compression demo: the pipeline the paper's introduction
// motivates (transform -> quantize -> [entropy code] -> dequantize ->
// inverse transform).  Sweeps the quantizer step and prints the
// rate-distortion trade: fraction of zeroed coefficients (a proxy for the
// entropy coder's job) versus reconstruction PSNR.
//
//   ./image_compression [input.pgm]
#include <cmath>
#include <cstdio>

#include "codec/codec.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "dsp/quantizer.hpp"

int main(int argc, char** argv) {
  using namespace dwt::dsp;
  Image original = argc > 1 ? read_pgm(argv[1])
                            : make_still_tone_image(256, 256);
  std::printf("Compressing a %zux%zu image with the 9/7 lifting DWT "
              "(3 octaves) + deadzone quantizer.\n\n",
              original.width(), original.height());

  const int octaves = 3;
  std::printf("%-12s %14s %12s\n", "quant step", "zeroed coeffs", "PSNR (dB)");
  for (const double step : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    Image plane = original;
    level_shift_forward(plane);
    dwt2d_forward(Method::kLiftingFloat, plane, octaves);
    quantize_plane(plane, octaves, step);
    const double zeros = zero_fraction(plane);
    dwt2d_inverse(Method::kLiftingFloat, plane, octaves);
    level_shift_inverse(plane);
    const double quality = psnr(original, plane.clamped_u8());
    std::printf("%-12.1f %13.1f%% %12.2f\n", step, 100.0 * zeros, quality);
    if (step == 8.0) {
      write_pgm(plane, "compressed_step8.pgm");
    }
  }
  std::printf(
      "\nThe quantizer zeroes most detail coefficients at moderate quality\n"
      "loss -- the energy-compaction property the hardware DWT cores exist\n"
      "to compute.  Wrote compressed_step8.pgm.\n");

  // Full codec (transform + quantize + Exp-Golomb entropy coding): actual
  // coded rates in bits per pixel.
  dwt::dsp::Image integer_img = original;
  for (double& v : integer_img.data()) v = std::round(v);
  std::printf("\nFull codec rates (entropy coded):\n");
  std::printf("%-26s %10s %12s\n", "mode", "bpp", "PSNR (dB)");
  {
    dwt::codec::EncodeOptions opt;
    opt.mode = dwt::codec::CodecMode::kLossless53;
    const auto enc = dwt::codec::encode_image(integer_img, opt);
    const auto dec = dwt::codec::decode_image(enc.bytes);
    std::printf("%-26s %10.2f %12s\n", "lossless 5/3",
                enc.bits_per_pixel(original.width(), original.height()),
                dec.data() == integer_img.data() ? "exact" : "BROKEN");
  }
  for (const double step : {1.0, 4.0, 16.0}) {
    dwt::codec::EncodeOptions opt;
    opt.base_step = step;
    const auto enc = dwt::codec::encode_image(integer_img, opt);
    const auto dec = dwt::codec::decode_image(enc.bytes);
    std::printf("lossy 9/7, step %-9.1f %10.2f %12.2f\n", step,
                enc.bits_per_pixel(original.width(), original.height()),
                psnr(integer_img, dec));
  }
  return 0;
}
