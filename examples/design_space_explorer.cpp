// Design-space exploration: the paper's methodology as a program.  Sweeps
// architecture choices (multiplier style x adder style x pipelining x
// recoding), synthesizes each candidate through the APEX model, and writes
// the area/frequency/power trade-off space as CSV for plotting.
//
//   ./design_space_explorer [out.csv]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  using namespace dwt;
  const std::string csv_path = argc > 1 ? argv[1] : "design_space.csv";
  explore::Explorer explorer;

  // Enumerate the architecture space (the paper's five designs live inside
  // this grid).
  std::vector<hw::DesignSpec> specs;
  int idx = 0;
  for (const auto mult :
       {hw::MultiplierStyle::kGenericArray, hw::MultiplierStyle::kShiftAdd}) {
    for (const auto style :
         {rtl::AdderStyle::kCarryChain, rtl::AdderStyle::kRippleGates}) {
      for (const bool pipelined : {false, true}) {
        for (const auto recoding :
             {rtl::Recoding::kBinaryWithReuse, rtl::Recoding::kCsd}) {
          if (mult == hw::MultiplierStyle::kGenericArray &&
              recoding == rtl::Recoding::kCsd) {
            continue;  // recoding only affects shift-add multipliers
          }
          hw::DesignSpec spec;
          spec.id = hw::DesignId::kDesign2;  // tag unused for custom points
          spec.name = "pt" + std::to_string(idx++);
          spec.description =
              std::string(mult == hw::MultiplierStyle::kGenericArray
                              ? "generic-mult"
                              : "shift-add") +
              (style == rtl::AdderStyle::kCarryChain ? ",behavioral"
                                                     : ",structural") +
              (pipelined ? ",pipelined" : ",flat") +
              (recoding == rtl::Recoding::kCsd ? ",csd" : ",binary");
          spec.config.multiplier = mult;
          spec.config.adder_style = style;
          spec.config.pipelined_operators = pipelined;
          spec.config.recoding = recoding;
          specs.push_back(std::move(spec));
        }
      }
    }
  }

  std::printf("Exploring %zu architecture points...\n\n", specs.size());
  std::printf("%-6s %-42s %7s %11s %13s\n", "point", "configuration", "LEs",
              "fmax (MHz)", "P@15MHz (mW)");
  std::vector<explore::TradeoffPoint> points;
  std::ofstream csv(csv_path);
  csv << "name,config,les,fmax_mhz,power_mw_15mhz,stages\n";
  for (const hw::DesignSpec& spec : specs) {
    const auto eval = explorer.evaluate(spec);
    std::printf("%-6s %-42s %7zu %11.1f %13.1f\n", spec.name.c_str(),
                spec.description.c_str(), eval.report.logic_elements,
                eval.report.fmax_mhz, eval.report.power_mw);
    points.push_back({spec.description,
                      static_cast<double>(eval.report.logic_elements),
                      1000.0 / eval.report.fmax_mhz, eval.report.power_mw});
    csv << spec.name << ",\"" << spec.description << "\","
        << eval.report.logic_elements << ',' << eval.report.fmax_mhz << ','
        << eval.report.power_mw << ',' << eval.report.pipeline_stages << '\n';
  }

  std::printf("\nPareto-optimal points (area / period / power):\n");
  for (const std::size_t i : explore::pareto_front(points)) {
    std::printf("  %s\n", points[i].name.c_str());
  }
  std::printf("\nWrote %s\n", csv_path.c_str());
  return 0;
}
