// Quickstart: the software wavelet API in one page.
//
//   ./quickstart [input.pgm]
//
// Loads an 8-bit PGM (or generates the synthetic still-tone test scene),
// runs a 3-octave 9/7 DWT with the lifting scheme, reports how much energy
// the transform packs into the LL band, reconstructs, and writes the
// transform plane and reconstruction next to the input.
#include <cstdio>

#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "dsp/quantizer.hpp"

int main(int argc, char** argv) {
  using namespace dwt::dsp;

  // 1. Get an image.
  Image original;
  if (argc > 1) {
    original = read_pgm(argv[1]);
    std::printf("Loaded %s (%zux%zu)\n", argv[1], original.width(),
                original.height());
  } else {
    original = make_still_tone_image(256, 256);
    std::printf("Generated a 256x256 synthetic still-tone scene "
                "(pass a .pgm path to use your own image).\n");
  }

  // 2. Forward transform: DC level shift, then 3 octaves of the 9/7 lifting
  //    DWT (the JPEG2000 irreversible transform).
  const int octaves = 3;
  Image plane = original;
  level_shift_forward(plane);
  dwt2d_forward(Method::kLiftingFloat, plane, octaves);

  // 3. Inspect energy compaction: the whole point of the transform.
  const SubbandRect ll = subband_rect(plane.width(), plane.height(), octaves,
                                      Band::kLL);
  double ll_energy = 0.0, total_energy = 0.0;
  for (std::size_t y = 0; y < plane.height(); ++y) {
    for (std::size_t x = 0; x < plane.width(); ++x) {
      const double e = plane.at(x, y) * plane.at(x, y);
      total_energy += e;
      if (x < ll.w && y < ll.h) ll_energy += e;
    }
  }
  std::printf("LL band holds %.1f%% of the energy in %.2f%% of the samples.\n",
              100.0 * ll_energy / total_energy,
              100.0 * static_cast<double>(ll.w * ll.h) /
                  static_cast<double>(plane.width() * plane.height()));

  // 4. Round coefficients to integers (what fixed-width storage implies),
  //    reconstruct, and measure the quality.
  Image coeffs = plane;  // keep a copy for the visualization
  round_coefficients(plane);
  dwt2d_inverse(Method::kLiftingFloat, plane, octaves);
  level_shift_inverse(plane);
  const double quality = psnr(original, plane.clamped_u8());
  std::printf("Round trip with integer coefficients: %.2f dB PSNR.\n", quality);

  // 5. Save artifacts.
  for (double& v : coeffs.data()) v = v / 4.0 + 128.0;  // displayable
  write_pgm(coeffs, "quickstart_transform.pgm");
  write_pgm(plane, "quickstart_reconstruction.pgm");
  std::printf("Wrote quickstart_transform.pgm and "
              "quickstart_reconstruction.pgm\n");
  return 0;
}
