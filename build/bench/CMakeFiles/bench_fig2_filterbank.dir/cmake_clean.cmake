file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_filterbank.dir/bench_fig2_filterbank.cpp.o"
  "CMakeFiles/bench_fig2_filterbank.dir/bench_fig2_filterbank.cpp.o.d"
  "bench_fig2_filterbank"
  "bench_fig2_filterbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_filterbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
