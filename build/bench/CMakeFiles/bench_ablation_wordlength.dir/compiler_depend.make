# Empty compiler generated dependencies file for bench_ablation_wordlength.
# This may be replaced when dependencies are built.
