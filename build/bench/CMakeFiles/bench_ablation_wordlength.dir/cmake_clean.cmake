file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wordlength.dir/bench_ablation_wordlength.cpp.o"
  "CMakeFiles/bench_ablation_wordlength.dir/bench_ablation_wordlength.cpp.o.d"
  "bench_ablation_wordlength"
  "bench_ablation_wordlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wordlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
