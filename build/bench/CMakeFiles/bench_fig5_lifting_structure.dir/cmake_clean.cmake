file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lifting_structure.dir/bench_fig5_lifting_structure.cpp.o"
  "CMakeFiles/bench_fig5_lifting_structure.dir/bench_fig5_lifting_structure.cpp.o.d"
  "bench_fig5_lifting_structure"
  "bench_fig5_lifting_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lifting_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
