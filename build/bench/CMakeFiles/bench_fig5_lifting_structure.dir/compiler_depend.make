# Empty compiler generated dependencies file for bench_fig5_lifting_structure.
# This may be replaced when dependencies are built.
