# Empty dependencies file for bench_table3_designs.
# This may be replaced when dependencies are built.
