# Empty dependencies file for bench_ablation_recoding.
# This may be replaced when dependencies are built.
