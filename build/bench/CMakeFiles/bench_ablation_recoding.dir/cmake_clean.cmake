file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recoding.dir/bench_ablation_recoding.cpp.o"
  "CMakeFiles/bench_ablation_recoding.dir/bench_ablation_recoding.cpp.o.d"
  "bench_ablation_recoding"
  "bench_ablation_recoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
