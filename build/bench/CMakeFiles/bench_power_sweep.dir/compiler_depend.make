# Empty compiler generated dependencies file for bench_power_sweep.
# This may be replaced when dependencies are built.
