# Empty dependencies file for bench_fig8_stage_pipelining.
# This may be replaced when dependencies are built.
