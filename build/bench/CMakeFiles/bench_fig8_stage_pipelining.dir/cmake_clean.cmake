file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_stage_pipelining.dir/bench_fig8_stage_pipelining.cpp.o"
  "CMakeFiles/bench_fig8_stage_pipelining.dir/bench_fig8_stage_pipelining.cpp.o.d"
  "bench_fig8_stage_pipelining"
  "bench_fig8_stage_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_stage_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
