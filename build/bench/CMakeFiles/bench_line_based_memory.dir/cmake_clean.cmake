file(REMOVE_RECURSE
  "CMakeFiles/bench_line_based_memory.dir/bench_line_based_memory.cpp.o"
  "CMakeFiles/bench_line_based_memory.dir/bench_line_based_memory.cpp.o.d"
  "bench_line_based_memory"
  "bench_line_based_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_line_based_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
