# Empty dependencies file for bench_line_based_memory.
# This may be replaced when dependencies are built.
