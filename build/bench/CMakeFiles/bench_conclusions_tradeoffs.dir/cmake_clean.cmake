file(REMOVE_RECURSE
  "CMakeFiles/bench_conclusions_tradeoffs.dir/bench_conclusions_tradeoffs.cpp.o"
  "CMakeFiles/bench_conclusions_tradeoffs.dir/bench_conclusions_tradeoffs.cpp.o.d"
  "bench_conclusions_tradeoffs"
  "bench_conclusions_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conclusions_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
