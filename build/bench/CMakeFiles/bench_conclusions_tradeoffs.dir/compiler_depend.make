# Empty compiler generated dependencies file for bench_conclusions_tradeoffs.
# This may be replaced when dependencies are built.
