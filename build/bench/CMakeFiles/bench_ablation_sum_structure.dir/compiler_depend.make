# Empty compiler generated dependencies file for bench_ablation_sum_structure.
# This may be replaced when dependencies are built.
