# Empty dependencies file for bench_table1_coefficients.
# This may be replaced when dependencies are built.
