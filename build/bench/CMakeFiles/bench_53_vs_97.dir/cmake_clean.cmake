file(REMOVE_RECURSE
  "CMakeFiles/bench_53_vs_97.dir/bench_53_vs_97.cpp.o"
  "CMakeFiles/bench_53_vs_97.dir/bench_53_vs_97.cpp.o.d"
  "bench_53_vs_97"
  "bench_53_vs_97.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_53_vs_97.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
