# Empty dependencies file for bench_53_vs_97.
# This may be replaced when dependencies are built.
