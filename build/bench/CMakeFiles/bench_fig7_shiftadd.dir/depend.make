# Empty dependencies file for bench_fig7_shiftadd.
# This may be replaced when dependencies are built.
