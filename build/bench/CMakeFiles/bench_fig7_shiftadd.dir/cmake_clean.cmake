file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_shiftadd.dir/bench_fig7_shiftadd.cpp.o"
  "CMakeFiles/bench_fig7_shiftadd.dir/bench_fig7_shiftadd.cpp.o.d"
  "bench_fig7_shiftadd"
  "bench_fig7_shiftadd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_shiftadd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
