# Empty dependencies file for bench_sec31_bitwidths.
# This may be replaced when dependencies are built.
