file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_bitwidths.dir/bench_sec31_bitwidths.cpp.o"
  "CMakeFiles/bench_sec31_bitwidths.dir/bench_sec31_bitwidths.cpp.o.d"
  "bench_sec31_bitwidths"
  "bench_sec31_bitwidths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_bitwidths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
