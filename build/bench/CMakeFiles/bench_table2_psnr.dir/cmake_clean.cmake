file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_psnr.dir/bench_table2_psnr.cpp.o"
  "CMakeFiles/bench_table2_psnr.dir/bench_table2_psnr.cpp.o.d"
  "bench_table2_psnr"
  "bench_table2_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
