# Empty dependencies file for bench_table2_psnr.
# This may be replaced when dependencies are built.
