file(REMOVE_RECURSE
  "CMakeFiles/bench_idwt_core.dir/bench_idwt_core.cpp.o"
  "CMakeFiles/bench_idwt_core.dir/bench_idwt_core.cpp.o.d"
  "bench_idwt_core"
  "bench_idwt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idwt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
