# Empty compiler generated dependencies file for bench_idwt_core.
# This may be replaced when dependencies are built.
