file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_throughput.dir/bench_sw_throughput.cpp.o"
  "CMakeFiles/bench_sw_throughput.dir/bench_sw_throughput.cpp.o.d"
  "bench_sw_throughput"
  "bench_sw_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
