# Empty dependencies file for bench_sw_throughput.
# This may be replaced when dependencies are built.
