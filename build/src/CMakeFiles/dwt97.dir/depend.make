# Empty dependencies file for dwt97.
# This may be replaced when dependencies are built.
