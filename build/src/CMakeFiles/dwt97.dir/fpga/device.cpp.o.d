src/CMakeFiles/dwt97.dir/fpga/device.cpp.o: \
 /root/repo/src/fpga/device.cpp /usr/include/stdc-predef.h \
 /root/repo/src/fpga/device.hpp
