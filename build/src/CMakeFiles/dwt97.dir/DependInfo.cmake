
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/CMakeFiles/dwt97.dir/codec/bitstream.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/codec/bitstream.cpp.o.d"
  "/root/repo/src/codec/codec.cpp" "src/CMakeFiles/dwt97.dir/codec/codec.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/codec/codec.cpp.o.d"
  "/root/repo/src/codec/golomb.cpp" "src/CMakeFiles/dwt97.dir/codec/golomb.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/codec/golomb.cpp.o.d"
  "/root/repo/src/common/fixed_point.cpp" "src/CMakeFiles/dwt97.dir/common/fixed_point.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/common/fixed_point.cpp.o.d"
  "/root/repo/src/common/interval.cpp" "src/CMakeFiles/dwt97.dir/common/interval.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/common/interval.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dwt97.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/common/rng.cpp.o.d"
  "/root/repo/src/dsp/dwt1d.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt1d.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt1d.cpp.o.d"
  "/root/repo/src/dsp/dwt2d.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt2d.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt2d.cpp.o.d"
  "/root/repo/src/dsp/dwt53.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt53.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt53.cpp.o.d"
  "/root/repo/src/dsp/dwt97_fir.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt97_fir.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt97_fir.cpp.o.d"
  "/root/repo/src/dsp/dwt97_lifting.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt97_lifting.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt97_lifting.cpp.o.d"
  "/root/repo/src/dsp/dwt97_lifting_fixed.cpp" "src/CMakeFiles/dwt97.dir/dsp/dwt97_lifting_fixed.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/dwt97_lifting_fixed.cpp.o.d"
  "/root/repo/src/dsp/fir_filter.cpp" "src/CMakeFiles/dwt97.dir/dsp/fir_filter.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/fir_filter.cpp.o.d"
  "/root/repo/src/dsp/image.cpp" "src/CMakeFiles/dwt97.dir/dsp/image.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/image.cpp.o.d"
  "/root/repo/src/dsp/image_gen.cpp" "src/CMakeFiles/dwt97.dir/dsp/image_gen.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/image_gen.cpp.o.d"
  "/root/repo/src/dsp/lifting_coeffs.cpp" "src/CMakeFiles/dwt97.dir/dsp/lifting_coeffs.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/lifting_coeffs.cpp.o.d"
  "/root/repo/src/dsp/metrics.cpp" "src/CMakeFiles/dwt97.dir/dsp/metrics.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/metrics.cpp.o.d"
  "/root/repo/src/dsp/quantizer.cpp" "src/CMakeFiles/dwt97.dir/dsp/quantizer.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/quantizer.cpp.o.d"
  "/root/repo/src/dsp/streaming_lifting.cpp" "src/CMakeFiles/dwt97.dir/dsp/streaming_lifting.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/dsp/streaming_lifting.cpp.o.d"
  "/root/repo/src/explore/explorer.cpp" "src/CMakeFiles/dwt97.dir/explore/explorer.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/explore/explorer.cpp.o.d"
  "/root/repo/src/explore/pareto.cpp" "src/CMakeFiles/dwt97.dir/explore/pareto.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/explore/pareto.cpp.o.d"
  "/root/repo/src/explore/tradeoffs.cpp" "src/CMakeFiles/dwt97.dir/explore/tradeoffs.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/explore/tradeoffs.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/CMakeFiles/dwt97.dir/fpga/device.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/device.cpp.o.d"
  "/root/repo/src/fpga/mapped_sim.cpp" "src/CMakeFiles/dwt97.dir/fpga/mapped_sim.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/mapped_sim.cpp.o.d"
  "/root/repo/src/fpga/power.cpp" "src/CMakeFiles/dwt97.dir/fpga/power.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/power.cpp.o.d"
  "/root/repo/src/fpga/report.cpp" "src/CMakeFiles/dwt97.dir/fpga/report.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/report.cpp.o.d"
  "/root/repo/src/fpga/tech_mapper.cpp" "src/CMakeFiles/dwt97.dir/fpga/tech_mapper.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/tech_mapper.cpp.o.d"
  "/root/repo/src/fpga/timing.cpp" "src/CMakeFiles/dwt97.dir/fpga/timing.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/fpga/timing.cpp.o.d"
  "/root/repo/src/hw/bitwidth_analysis.cpp" "src/CMakeFiles/dwt97.dir/hw/bitwidth_analysis.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/bitwidth_analysis.cpp.o.d"
  "/root/repo/src/hw/designs.cpp" "src/CMakeFiles/dwt97.dir/hw/designs.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/designs.cpp.o.d"
  "/root/repo/src/hw/dwt2d_system.cpp" "src/CMakeFiles/dwt97.dir/hw/dwt2d_system.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/dwt2d_system.cpp.o.d"
  "/root/repo/src/hw/filterbank_core.cpp" "src/CMakeFiles/dwt97.dir/hw/filterbank_core.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/filterbank_core.cpp.o.d"
  "/root/repo/src/hw/inverse_lifting_datapath.cpp" "src/CMakeFiles/dwt97.dir/hw/inverse_lifting_datapath.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/inverse_lifting_datapath.cpp.o.d"
  "/root/repo/src/hw/lifting53_datapath.cpp" "src/CMakeFiles/dwt97.dir/hw/lifting53_datapath.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/lifting53_datapath.cpp.o.d"
  "/root/repo/src/hw/lifting_datapath.cpp" "src/CMakeFiles/dwt97.dir/hw/lifting_datapath.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/lifting_datapath.cpp.o.d"
  "/root/repo/src/hw/line_based_dwt2d.cpp" "src/CMakeFiles/dwt97.dir/hw/line_based_dwt2d.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/line_based_dwt2d.cpp.o.d"
  "/root/repo/src/hw/stream_runner.cpp" "src/CMakeFiles/dwt97.dir/hw/stream_runner.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/hw/stream_runner.cpp.o.d"
  "/root/repo/src/rtl/activity_sim.cpp" "src/CMakeFiles/dwt97.dir/rtl/activity_sim.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/activity_sim.cpp.o.d"
  "/root/repo/src/rtl/adders.cpp" "src/CMakeFiles/dwt97.dir/rtl/adders.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/adders.cpp.o.d"
  "/root/repo/src/rtl/builder.cpp" "src/CMakeFiles/dwt97.dir/rtl/builder.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/builder.cpp.o.d"
  "/root/repo/src/rtl/multipliers.cpp" "src/CMakeFiles/dwt97.dir/rtl/multipliers.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/multipliers.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/CMakeFiles/dwt97.dir/rtl/netlist.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/netlist.cpp.o.d"
  "/root/repo/src/rtl/registers.cpp" "src/CMakeFiles/dwt97.dir/rtl/registers.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/registers.cpp.o.d"
  "/root/repo/src/rtl/shiftadd_plan.cpp" "src/CMakeFiles/dwt97.dir/rtl/shiftadd_plan.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/shiftadd_plan.cpp.o.d"
  "/root/repo/src/rtl/simplify.cpp" "src/CMakeFiles/dwt97.dir/rtl/simplify.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/simplify.cpp.o.d"
  "/root/repo/src/rtl/simulator.cpp" "src/CMakeFiles/dwt97.dir/rtl/simulator.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/simulator.cpp.o.d"
  "/root/repo/src/rtl/stats.cpp" "src/CMakeFiles/dwt97.dir/rtl/stats.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/stats.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/CMakeFiles/dwt97.dir/rtl/vcd.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/vcd.cpp.o.d"
  "/root/repo/src/rtl/verilog_writer.cpp" "src/CMakeFiles/dwt97.dir/rtl/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/dwt97.dir/rtl/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
