file(REMOVE_RECURSE
  "libdwt97.a"
)
