# Empty compiler generated dependencies file for dwt97_tests.
# This may be replaced when dependencies are built.
