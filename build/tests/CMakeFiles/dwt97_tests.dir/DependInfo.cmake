
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec/test_bitstream.cpp" "tests/CMakeFiles/dwt97_tests.dir/codec/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/codec/test_bitstream.cpp.o.d"
  "/root/repo/tests/codec/test_codec.cpp" "tests/CMakeFiles/dwt97_tests.dir/codec/test_codec.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/codec/test_codec.cpp.o.d"
  "/root/repo/tests/codec/test_golomb.cpp" "tests/CMakeFiles/dwt97_tests.dir/codec/test_golomb.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/codec/test_golomb.cpp.o.d"
  "/root/repo/tests/common/test_fixed_point.cpp" "tests/CMakeFiles/dwt97_tests.dir/common/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/common/test_fixed_point.cpp.o.d"
  "/root/repo/tests/common/test_interval.cpp" "tests/CMakeFiles/dwt97_tests.dir/common/test_interval.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/common/test_interval.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/dwt97_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt1d.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt1d.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt1d.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt2d.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt2d.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt2d.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt53.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt53.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt53.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt97_fir.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_fir.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_fir.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt97_lifting.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_lifting.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_lifting.cpp.o.d"
  "/root/repo/tests/dsp/test_dwt97_lifting_fixed.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_lifting_fixed.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_dwt97_lifting_fixed.cpp.o.d"
  "/root/repo/tests/dsp/test_fir_filter.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_fir_filter.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_fir_filter.cpp.o.d"
  "/root/repo/tests/dsp/test_image.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_image.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_image.cpp.o.d"
  "/root/repo/tests/dsp/test_lifting_coeffs.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_lifting_coeffs.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_lifting_coeffs.cpp.o.d"
  "/root/repo/tests/dsp/test_metrics.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_metrics.cpp.o.d"
  "/root/repo/tests/dsp/test_quantizer.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_quantizer.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_quantizer.cpp.o.d"
  "/root/repo/tests/dsp/test_streaming_lifting.cpp" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_streaming_lifting.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/dsp/test_streaming_lifting.cpp.o.d"
  "/root/repo/tests/explore/test_explorer.cpp" "tests/CMakeFiles/dwt97_tests.dir/explore/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/explore/test_explorer.cpp.o.d"
  "/root/repo/tests/explore/test_pareto.cpp" "tests/CMakeFiles/dwt97_tests.dir/explore/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/explore/test_pareto.cpp.o.d"
  "/root/repo/tests/explore/test_tradeoffs.cpp" "tests/CMakeFiles/dwt97_tests.dir/explore/test_tradeoffs.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/explore/test_tradeoffs.cpp.o.d"
  "/root/repo/tests/fpga/test_mapped_sim.cpp" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_mapped_sim.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_mapped_sim.cpp.o.d"
  "/root/repo/tests/fpga/test_power.cpp" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_power.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_power.cpp.o.d"
  "/root/repo/tests/fpga/test_tech_mapper.cpp" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_tech_mapper.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_tech_mapper.cpp.o.d"
  "/root/repo/tests/fpga/test_timing.cpp" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_timing.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/fpga/test_timing.cpp.o.d"
  "/root/repo/tests/hw/test_bitwidth_analysis.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_bitwidth_analysis.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_bitwidth_analysis.cpp.o.d"
  "/root/repo/tests/hw/test_designs.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_designs.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_designs.cpp.o.d"
  "/root/repo/tests/hw/test_dwt2d_system.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_dwt2d_system.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_dwt2d_system.cpp.o.d"
  "/root/repo/tests/hw/test_filterbank_core.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_filterbank_core.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_filterbank_core.cpp.o.d"
  "/root/repo/tests/hw/test_inverse_datapath.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_inverse_datapath.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_inverse_datapath.cpp.o.d"
  "/root/repo/tests/hw/test_lifting53_datapath.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_lifting53_datapath.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_lifting53_datapath.cpp.o.d"
  "/root/repo/tests/hw/test_lifting_datapath.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_lifting_datapath.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_lifting_datapath.cpp.o.d"
  "/root/repo/tests/hw/test_line_based.cpp" "tests/CMakeFiles/dwt97_tests.dir/hw/test_line_based.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/hw/test_line_based.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/dwt97_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_netlist_fuzz.cpp" "tests/CMakeFiles/dwt97_tests.dir/integration/test_netlist_fuzz.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/integration/test_netlist_fuzz.cpp.o.d"
  "/root/repo/tests/rtl/test_activity_sim.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_activity_sim.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_activity_sim.cpp.o.d"
  "/root/repo/tests/rtl/test_adders.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_adders.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_adders.cpp.o.d"
  "/root/repo/tests/rtl/test_builder.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_builder.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_builder.cpp.o.d"
  "/root/repo/tests/rtl/test_multipliers.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_multipliers.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_multipliers.cpp.o.d"
  "/root/repo/tests/rtl/test_netlist.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_netlist.cpp.o.d"
  "/root/repo/tests/rtl/test_registers.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_registers.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_registers.cpp.o.d"
  "/root/repo/tests/rtl/test_shiftadd_plan.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_shiftadd_plan.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_shiftadd_plan.cpp.o.d"
  "/root/repo/tests/rtl/test_simplify.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_simplify.cpp.o.d"
  "/root/repo/tests/rtl/test_simulator.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_simulator.cpp.o.d"
  "/root/repo/tests/rtl/test_stats.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_stats.cpp.o.d"
  "/root/repo/tests/rtl/test_writers.cpp" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_writers.cpp.o" "gcc" "tests/CMakeFiles/dwt97_tests.dir/rtl/test_writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dwt97.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
