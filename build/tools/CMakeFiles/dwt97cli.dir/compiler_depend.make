# Empty compiler generated dependencies file for dwt97cli.
# This may be replaced when dependencies are built.
