file(REMOVE_RECURSE
  "CMakeFiles/dwt97cli.dir/dwt97cli.cpp.o"
  "CMakeFiles/dwt97cli.dir/dwt97cli.cpp.o.d"
  "dwt97cli"
  "dwt97cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt97cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
