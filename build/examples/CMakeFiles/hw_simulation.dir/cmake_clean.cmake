file(REMOVE_RECURSE
  "CMakeFiles/hw_simulation.dir/hw_simulation.cpp.o"
  "CMakeFiles/hw_simulation.dir/hw_simulation.cpp.o.d"
  "hw_simulation"
  "hw_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
