# Empty dependencies file for hw_simulation.
# This may be replaced when dependencies are built.
