# Smoke test: an odd-sized (129x97) PGM through the full CLI pipeline --
# generate, lossless compress/decompress (must be bit-exact), lossy
# compress/decompress, and the tile-parallel round trip at two thread
# counts (outputs must be byte-identical).  Driven by ctest; any failing
# step aborts with FATAL_ERROR.
file(MAKE_DIRECTORY ${WORK})

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    string(JOIN " " cmdline ${ARGV})
    message(FATAL_ERROR "failed (${rc}): ${cmdline}")
  endif()
endfunction()

run(${CLI} gen ${WORK}/odd.pgm 129 97 5)

run(${CLI} compress ${WORK}/odd.pgm ${WORK}/odd.dwt --lossless)
run(${CLI} decompress ${WORK}/odd.dwt ${WORK}/odd_lossless.pgm)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/odd.pgm ${WORK}/odd_lossless.pgm
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "lossless 5/3 round trip is not bit-exact on 129x97")
endif()

run(${CLI} compress ${WORK}/odd.pgm ${WORK}/odd_lossy.dwt --step 4 --octaves 3)
run(${CLI} decompress ${WORK}/odd_lossy.dwt ${WORK}/odd_lossy.pgm)
run(${CLI} psnr ${WORK}/odd.pgm ${WORK}/odd_lossy.pgm)

run(${CLI} tile ${WORK}/odd.pgm ${WORK}/tile1.pgm --octaves 2 --threads 1)
run(${CLI} tile ${WORK}/odd.pgm ${WORK}/tile8.pgm --octaves 2 --threads 8)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/tile1.pgm ${WORK}/tile8.pgm
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "tile pipeline output differs across thread counts")
endif()

# Gate-level tile backend: the compiled bit-parallel core must reconstruct
# byte-identically to the software fixed-point path (its forward transform
# is bit-exact; the inverse leg always runs in software).
run(${CLI} tile ${WORK}/odd.pgm ${WORK}/tile_hw.pgm --octaves 2 --threads 4
    --backend rtl-compiled --design 3)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/tile1.pgm ${WORK}/tile_hw.pgm
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "gate-level tile backend output differs from software")
endif()
