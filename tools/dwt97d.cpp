// dwt97d -- the DWT-as-a-service daemon and its client.
//
//   dwt97d serve    [--socket PATH | --port N] [--workers N] [--queue N]
//                   [--port-file PATH]
//   dwt97d tile     <in.pgm> <out.pgm> --connect SPEC [--octaves N]
//                   [--tile N] [--backend NAME] [--design D]
//                   [--opt-level 0|1|2]
//   dwt97d forward  <in.pgm> <out.bin> --connect SPEC [same knobs]
//   dwt97d compress <in.pgm> <out.dwt> --connect SPEC [--octaves N]
//   dwt97d metrics  --connect SPEC
//   dwt97d shutdown --connect SPEC
//
// SPEC is `unix:PATH` or a TCP port number on 127.0.0.1.  `serve` runs the
// bounded-queue worker-pool server (src/server) until SIGINT/SIGTERM or a
// shutdown request arrives, then drains gracefully.  The client subcommands
// frame one request, print or write the response, and exit nonzero on any
// error status -- `dwt97d tile` output is byte-identical to `dwt97cli tile`
// under the same knobs.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "hw/designs.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dwt97d serve    [--socket PATH | --port N] [--workers N] "
      "[--queue N]\n"
      "                  [--port-file PATH]\n"
      "  dwt97d tile     <in.pgm> <out.pgm> --connect SPEC [--octaves N]\n"
      "                  [--tile N] [--backend NAME] [--design D] "
      "[--opt-level 0|1|2]\n"
      "  dwt97d forward  <in.pgm> <out.bin> --connect SPEC [same knobs]\n"
      "  dwt97d compress <in.pgm> <out.dwt> --connect SPEC [--octaves N]\n"
      "  dwt97d metrics  --connect SPEC\n"
      "  dwt97d shutdown --connect SPEC\n"
      "SPEC: unix:PATH or a TCP port on 127.0.0.1\n"
      "backends: %s\n",
      dwt::core::backend_names().c_str());
  return 2;
}

bool parse_long(const char* s, long min, long max, long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  // A full disk or I/O error surfaces here, not as a silent exit 0 handing
  // a truncated result file downstream (faultcampaign's checked --out
  // semantics).
  out.close();
  if (!out) throw std::runtime_error("write failed for " + path);
}

/// True when `arg` is one of the value-taking `flags`: prints the missing-
/// value diagnostic so a trailing flag does not masquerade as an unknown
/// argument.
bool report_missing_value(const char* arg,
                          std::initializer_list<const char*> flags) {
  for (const char* f : flags) {
    if (std::strcmp(arg, f) == 0) {
      std::fprintf(stderr, "missing value for %s\n", f);
      return true;
    }
  }
  return false;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Connects per SPEC (`unix:PATH` or a loopback TCP port).
int connect_to(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("bad unix socket path: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("cannot connect to " + path);
    }
    return fd;
  }
  long port = 0;
  if (!parse_long(spec.c_str(), 1, 65535, &port)) {
    throw std::runtime_error("bad --connect spec: " + spec +
                             " (want unix:PATH or a port number)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to 127.0.0.1:" + spec);
  }
  return fd;
}

/// One request/response exchange over a fresh connection.
dwt::server::Response roundtrip(const std::string& spec,
                                const dwt::server::Request& req) {
  const int fd = connect_to(spec);
  const std::vector<std::uint8_t> body = dwt::server::encode_request(req);
  // Prefix and body in one send() so small exchanges don't hit a Nagle +
  // delayed-ACK round trip on loopback TCP.
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + body.size());
  const auto n = static_cast<std::uint32_t>(body.size());
  frame.push_back(static_cast<std::uint8_t>(n & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(n >> 24));
  frame.insert(frame.end(), body.begin(), body.end());
  if (!write_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    throw std::runtime_error("send failed (server gone?)");
  }
  std::uint8_t rlen_bytes[4];
  if (!read_exact(fd, rlen_bytes, 4)) {
    ::close(fd);
    throw std::runtime_error("no response (server gone?)");
  }
  const std::uint32_t rlen = static_cast<std::uint32_t>(rlen_bytes[0]) |
                             (static_cast<std::uint32_t>(rlen_bytes[1]) << 8) |
                             (static_cast<std::uint32_t>(rlen_bytes[2]) << 16) |
                             (static_cast<std::uint32_t>(rlen_bytes[3]) << 24);
  if (rlen == 0 || rlen > dwt::server::kMaxFrameBytes) {
    ::close(fd);
    throw std::runtime_error("bad response frame length");
  }
  std::vector<std::uint8_t> buf(rlen);
  const bool ok = read_exact(fd, buf.data(), buf.size());
  ::close(fd);
  if (!ok) throw std::runtime_error("truncated response");
  std::string error;
  std::optional<dwt::server::Response> resp =
      dwt::server::decode_response(buf.data(), buf.size(), &error);
  if (!resp) throw std::runtime_error("undecodable response: " + error);
  return *resp;
}

int cmd_serve(int argc, char** argv) {
  dwt::server::ServerOptions opt;
  std::string port_file;
  for (int i = 2; i < argc; ++i) {
    long v = 0;
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      opt.unix_socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 0, 65535, &v)) {
        std::fprintf(stderr, "bad --port value: %s\n", argv[i]);
        return usage();
      }
      opt.tcp_port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 0, 1024, &v)) {
        std::fprintf(stderr, "bad --workers value: %s\n", argv[i]);
        return usage();
      }
      opt.workers = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 1, 1 << 20, &v)) {
        std::fprintf(stderr, "bad --queue value: %s\n", argv[i]);
        return usage();
      }
      opt.queue_depth = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else {
      if (!report_missing_value(argv[i], {"--socket", "--port", "--workers",
                                          "--queue", "--port-file"})) {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      }
      return usage();
    }
  }
  dwt::server::DwtServer server(opt);
  server.start();
  if (!opt.unix_socket_path.empty()) {
    std::printf("dwt97d: listening on %s (%u workers, queue %zu)\n",
                opt.unix_socket_path.c_str(), server.workers(),
                server.queue_capacity());
  } else {
    std::printf("dwt97d: listening on 127.0.0.1:%u (%u workers, queue %zu)\n",
                server.port(), server.workers(), server.queue_capacity());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("dwt97d: draining...\n");
  std::fflush(stdout);
  server.stop();
  std::printf("dwt97d: stopped\n");
  return 0;
}

/// Shared flag parsing for the transform client subcommands.
bool parse_transform_flags(int argc, char** argv, int first,
                           dwt::server::Request* req, std::string* spec) {
  for (int i = first; i < argc; ++i) {
    long v = 0;
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      *spec = argv[++i];
    } else if (std::strcmp(argv[i], "--octaves") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 1, 16, &v)) {
        std::fprintf(stderr, "bad --octaves value: %s\n", argv[i]);
        return false;
      }
      req->octaves = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--tile") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 1, 65535, &v)) {
        std::fprintf(stderr, "bad --tile value: %s\n", argv[i]);
        return false;
      }
      req->tile = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      req->backend = argv[++i];
    } else if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
      const std::optional<dwt::hw::DesignId> design =
          dwt::hw::parse_design(argv[++i]);
      if (!design) {
        std::fprintf(stderr, "bad --design value: %s\n", argv[i]);
        return false;
      }
      req->design = *design;
    } else if (std::strcmp(argv[i], "--opt-level") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 0, 2, &v)) {
        std::fprintf(stderr, "bad --opt-level value: %s\n", argv[i]);
        return false;
      }
      req->opt_level = static_cast<dwt::rtl::compiled::OptLevel>(v);
    } else {
      if (!report_missing_value(argv[i],
                                {"--connect", "--octaves", "--tile",
                                 "--backend", "--design", "--opt-level"})) {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      }
      return false;
    }
  }
  if (spec->empty()) {
    std::fprintf(stderr, "missing --connect SPEC\n");
    return false;
  }
  return true;
}

int cmd_transform(int argc, char** argv, dwt::server::Op op) {
  if (argc < 4) return usage();
  dwt::server::Request req;
  req.op = op;
  req.format = dwt::server::PayloadFormat::kPgm;
  std::string spec;
  if (!parse_transform_flags(argc, argv, 4, &req, &spec)) return usage();
  req.payload = read_file(argv[2]);
  const dwt::server::Response resp = roundtrip(spec, req);
  if (resp.status != dwt::server::Status::kOk) {
    std::fprintf(stderr, "error (%s): %s\n", dwt::server::to_string(resp.status),
                 dwt::server::response_message(resp).c_str());
    return 1;
  }
  write_file(argv[3], resp.payload);
  std::printf("%s: %ux%u, %zu bytes\n", argv[3], resp.width, resp.height,
              resp.payload.size());
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  std::string spec;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      spec = argv[++i];
    } else {
      (void)report_missing_value(argv[i], {"--connect"});
      return usage();
    }
  }
  if (spec.empty()) return usage();
  dwt::server::Request req;
  req.op = dwt::server::Op::kMetrics;
  const dwt::server::Response resp = roundtrip(spec, req);
  if (resp.status != dwt::server::Status::kOk) {
    std::fprintf(stderr, "error (%s): %s\n", dwt::server::to_string(resp.status),
                 dwt::server::response_message(resp).c_str());
    return 1;
  }
  std::fwrite(resp.payload.data(), 1, resp.payload.size(), stdout);
  std::printf("\n");
  return 0;
}

int cmd_shutdown(int argc, char** argv) {
  std::string spec;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      spec = argv[++i];
    } else {
      (void)report_missing_value(argv[i], {"--connect"});
      return usage();
    }
  }
  if (spec.empty()) return usage();
  dwt::server::Request req;
  req.op = dwt::server::Op::kShutdown;
  const dwt::server::Response resp = roundtrip(spec, req);
  if (resp.status != dwt::server::Status::kOk) {
    std::fprintf(stderr, "error (%s): %s\n", dwt::server::to_string(resp.status),
                 dwt::server::response_message(resp).c_str());
    return 1;
  }
  std::printf("shutdown requested\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
    if (std::strcmp(argv[1], "tile") == 0) {
      return cmd_transform(argc, argv, dwt::server::Op::kTileRoundTrip);
    }
    if (std::strcmp(argv[1], "forward") == 0) {
      return cmd_transform(argc, argv, dwt::server::Op::kForward);
    }
    if (std::strcmp(argv[1], "compress") == 0) {
      return cmd_transform(argc, argv, dwt::server::Op::kCompress);
    }
    if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(argc, argv);
    if (std::strcmp(argv[1], "shutdown") == 0) return cmd_shutdown(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
