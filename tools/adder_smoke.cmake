# Smoke test for the --adder axis: every adder architecture through the
# compiled gate-level tile backend must reconstruct byte-identically to the
# software fixed-point path (the architectures are functionally equivalent
# adders, so the coefficient stream -- and hence the output image -- cannot
# depend on the choice), and the Verilog writer must emit a netlist for a
# prefix-adder design point.  Driven by ctest; any failing step aborts.
file(MAKE_DIRECTORY ${WORK})

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    string(JOIN " " cmdline ${ARGV})
    message(FATAL_ERROR "failed (${rc}): ${cmdline}")
  endif()
endfunction()

run(${CLI} gen ${WORK}/in.pgm 96 67 9)
run(${CLI} tile ${WORK}/in.pgm ${WORK}/sw.pgm --octaves 2 --threads 2)

foreach(arch carry-chain ripple-gates kogge-stone brent-kung hybrid-ksbk)
  run(${CLI} tile ${WORK}/in.pgm ${WORK}/hw_${arch}.pgm --octaves 2
      --threads 2 --backend rtl-compiled --design 3 --adder ${arch})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK}/sw.pgm ${WORK}/hw_${arch}.pgm
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "tile output with --adder ${arch} differs from "
                        "software")
  endif()
endforeach()

run(${CLI} verilog 4 ${WORK}/d4_ks.v --adder kogge-stone)
file(READ ${WORK}/d4_ks.v verilog_text)
if(NOT verilog_text MATCHES "module dwt_lifting_core")
  message(FATAL_ERROR "verilog --adder kogge-stone wrote no module")
endif()
