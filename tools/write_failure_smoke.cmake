# Regression test for the write_file() bugfix: a CLI told to write its
# output to /dev/full (every write() returns ENOSPC) must exit non-zero
# instead of silently reporting success with a truncated/empty artifact.
# Driven by ctest; skipped where /dev/full does not exist (non-Linux).
if(NOT EXISTS /dev/full)
  message(STATUS "no /dev/full on this platform; skipping")
  return()
endif()

file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${CLI} gen ${WORK}/in.pgm 32 32 7 RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed (${rc})")
endif()

execute_process(COMMAND ${CLI} compress ${WORK}/in.pgm /dev/full
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "compress to /dev/full exited 0 -- ENOSPC swallowed")
endif()
if(NOT err MATCHES "write failed")
  message(FATAL_ERROR "expected a 'write failed' diagnostic, got: ${err}")
endif()
