// Diffs two bench --json record documents (see bench/schema.md) against a
// tolerance, so a committed baseline can gate regressions in CI.
//
//   bench_compare <baseline.json> <fresh.json> [--rel-tol R] [--skip-perf]
//
// Records are matched by (design, metric).  Deterministic metrics --
// instruction counts, reduction ratios, anything not performance-flavored --
// must match exactly; performance metrics (unit "vectors/s" / "trials/s",
// or a metric name containing "throughput" or "speedup") are compared with
// the relative tolerance (default 0.5, wall-clock numbers are noisy), or
// ignored entirely with --skip-perf (for cross-machine comparisons, where
// absolute throughput is meaningless but the deterministic record set still
// pins the optimizer's behavior).  A record present on one side only is an
// error: schema drift must be an explicit baseline update.
//
// The parser handles exactly the byte-stable single-record-per-line format
// common::JsonRecordWriter emits; it is not a general JSON reader.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Record {
  double value = 0.0;
  std::string unit;
};

/// (design, metric) -> record, insertion order preserved separately for
/// stable reporting.
struct Document {
  std::map<std::string, Record> records;
  std::vector<std::string> order;
};

/// Extracts the string value of `"key": "..."` from a record line; empty
/// when absent.
std::string string_field(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\": \"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + pat.size();
  std::string out;
  for (std::size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[++i];
    } else if (line[i] == '"') {
      return out;
    } else {
      out += line[i];
    }
  }
  return out;
}

bool number_field(const std::string& line, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\": ";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  const char* s = line.c_str() + at + pat.size();
  if (std::strncmp(s, "null", 4) == 0) {
    *out = std::nan("");
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s;
}

bool load(const char* path, Document* doc) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string line;
  std::istringstream lines(buf.str());
  while (std::getline(lines, line)) {
    if (line.find("\"metric\"") == std::string::npos) continue;
    const std::string design = string_field(line, "design");
    const std::string metric = string_field(line, "metric");
    Record rec;
    rec.unit = string_field(line, "unit");
    double value = 0.0;
    if (design.empty() || metric.empty() ||
        !number_field(line, "value", &value)) {
      std::fprintf(stderr, "bench_compare: malformed record in %s: %s\n",
                   path, line.c_str());
      return false;
    }
    rec.value = value;
    const std::string key = design + " / " + metric;
    if (doc->records.emplace(key, std::move(rec)).second) {
      doc->order.push_back(key);
    }
  }
  if (doc->records.empty()) {
    std::fprintf(stderr, "bench_compare: no records in %s\n", path);
    return false;
  }
  return true;
}

/// Wall-clock-flavored metrics get the relative tolerance; everything else
/// (instruction counts, reduction ratios) is deterministic.
bool is_perf(const std::string& key, const Record& r) {
  if (r.unit == "vectors/s" || r.unit == "trials/s" || r.unit == "req/s" ||
      r.unit == "us") {
    return true;
  }
  return key.find("throughput") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  double rel_tol = 0.5;
  bool skip_perf = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rel-tol") == 0) {
      // Flag first, value check second: a trailing `--rel-tol` used to fall
      // through to the positional branch and be opened as a file path.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: missing value for --rel-tol\n");
        return 2;
      }
      char* end = nullptr;
      rel_tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || rel_tol < 0.0) {
        std::fprintf(stderr, "bench_compare: bad --rel-tol %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--skip-perf") == 0) {
      skip_perf = true;
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (fresh_path == nullptr) {
      fresh_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || fresh_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <fresh.json> "
                 "[--rel-tol R] [--skip-perf]\n");
    return 2;
  }

  Document baseline;
  Document fresh;
  if (!load(baseline_path, &baseline) || !load(fresh_path, &fresh)) return 2;

  int failures = 0;
  std::size_t compared = 0;
  std::size_t perf_checked = 0;
  for (const std::string& key : baseline.order) {
    const Record& want = baseline.records.at(key);
    const auto it = fresh.records.find(key);
    if (it == fresh.records.end()) {
      std::printf("MISSING   %s (in baseline, not in fresh run)\n",
                  key.c_str());
      ++failures;
      continue;
    }
    const Record& got = it->second;
    ++compared;
    if (is_perf(key, want)) {
      if (skip_perf) continue;
      ++perf_checked;
      const bool both_nan = std::isnan(want.value) && std::isnan(got.value);
      if (std::isnan(want.value) != std::isnan(got.value)) {
        // One side null, the other a number: `rel` would be NaN and slip
        // past the tolerance comparison below.
        std::printf("PERF      %s: %.6g -> %.6g (null/number mismatch)\n",
                    key.c_str(), want.value, got.value);
        ++failures;
        continue;
      }
      const double rel =
          want.value != 0.0
              ? std::fabs(got.value - want.value) / std::fabs(want.value)
              : std::fabs(got.value);
      if (!both_nan && rel > rel_tol) {
        std::printf("PERF      %s: %.6g -> %.6g (%.0f%% > %.0f%% tolerance)\n",
                    key.c_str(), want.value, got.value, 100.0 * rel,
                    100.0 * rel_tol);
        ++failures;
      }
    } else {
      const bool both_nan = std::isnan(want.value) && std::isnan(got.value);
      if (!both_nan && got.value != want.value) {
        std::printf("EXACT     %s: %.10g -> %.10g (deterministic metric "
                    "changed)\n",
                    key.c_str(), want.value, got.value);
        ++failures;
      }
    }
  }
  for (const std::string& key : fresh.order) {
    if (baseline.records.find(key) == baseline.records.end()) {
      std::printf("EXTRA     %s (in fresh run, not in baseline)\n",
                  key.c_str());
      ++failures;
    }
  }

  std::printf("%zu records compared (%zu perf%s), %d failure%s\n", compared,
              perf_checked, skip_perf ? ", perf skipped" : "", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
