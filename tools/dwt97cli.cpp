// dwt97cli -- command-line front end to the library.
//
//   dwt97cli compress   <in.pgm> <out.dwt> [--lossless] [--step S] [--octaves N]
//   dwt97cli decompress <in.dwt> <out.pgm>
//   dwt97cli synth      [design 1..5]
//   dwt97cli verilog    <design 1..5> <out.v>
//   dwt97cli psnr       <a.pgm> <b.pgm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "dsp/metrics.hpp"
#include "explore/explorer.hpp"
#include "fpga/report.hpp"
#include "hw/designs.hpp"
#include "rtl/verilog_writer.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dwt97cli compress   <in.pgm> <out.dwt> [--lossless] "
               "[--step S] [--octaves N]\n"
               "  dwt97cli decompress <in.dwt> <out.pgm>\n"
               "  dwt97cli synth      [design 1..5]\n"
               "  dwt97cli verilog    <design 1..5> <out.v>\n"
               "  dwt97cli psnr       <a.pgm> <b.pgm>\n");
  return 2;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) return usage();
  dwt::codec::EncodeOptions opt;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lossless") == 0) {
      opt.mode = dwt::codec::CodecMode::kLossless53;
    } else if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc) {
      opt.base_step = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--octaves") == 0 && i + 1 < argc) {
      opt.octaves = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  dwt::dsp::Image img = dwt::dsp::read_pgm(argv[2]);
  for (double& v : img.data()) v = std::round(v);
  const auto enc = dwt::codec::encode_image(img, opt);
  write_file(argv[3], enc.bytes);
  std::printf("%s: %zux%zu -> %zu bytes (%.2f bpp, %s)\n", argv[3],
              img.width(), img.height(), enc.bytes.size(),
              enc.bits_per_pixel(img.width(), img.height()),
              opt.mode == dwt::codec::CodecMode::kLossless53 ? "lossless 5/3"
                                                             : "lossy 9/7");
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc != 4) return usage();
  const dwt::dsp::Image img = dwt::codec::decode_image(read_file(argv[2]));
  dwt::dsp::write_pgm(img, argv[3]);
  std::printf("%s: %zux%zu\n", argv[3], img.width(), img.height());
  return 0;
}

int cmd_synth(int argc, char** argv) {
  dwt::explore::Explorer explorer;
  if (argc >= 3) {
    const int n = std::atoi(argv[2]);
    if (n < 1 || n > 5) return usage();
    const auto eval = explorer.evaluate(
        dwt::hw::design_spec(static_cast<dwt::hw::DesignId>(n - 1)));
    std::printf("%s\n", eval.report.to_string().c_str());
    return 0;
  }
  std::printf("%s\n", dwt::fpga::format_table3_header().c_str());
  for (const auto& eval : explorer.evaluate_all()) {
    std::printf("%s\n", dwt::fpga::format_table3_row(eval.report).c_str());
  }
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc != 4) return usage();
  const int n = std::atoi(argv[2]);
  if (n < 1 || n > 5) return usage();
  const auto dp = dwt::hw::build_design(static_cast<dwt::hw::DesignId>(n - 1));
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[3]);
    return 1;
  }
  dwt::rtl::write_verilog(dp.netlist, "dwt_lifting_core", out);
  std::printf("%s: design %d (%zu cells, latency %d)\n", argv[3], n,
              dp.netlist.cell_count(), dp.info.latency);
  return 0;
}

int cmd_psnr(int argc, char** argv) {
  if (argc != 4) return usage();
  const dwt::dsp::Image a = dwt::dsp::read_pgm(argv[2]);
  const dwt::dsp::Image b = dwt::dsp::read_pgm(argv[3]);
  std::printf("%.3f dB\n", dwt::dsp::psnr(a, b));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "compress") == 0) return cmd_compress(argc, argv);
    if (std::strcmp(argv[1], "decompress") == 0) {
      return cmd_decompress(argc, argv);
    }
    if (std::strcmp(argv[1], "synth") == 0) return cmd_synth(argc, argv);
    if (std::strcmp(argv[1], "verilog") == 0) return cmd_verilog(argc, argv);
    if (std::strcmp(argv[1], "psnr") == 0) return cmd_psnr(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
