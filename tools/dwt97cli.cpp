// dwt97cli -- command-line front end to the library.
//
//   dwt97cli compress      <in.pgm> <out.dwt> [--lossless] [--step S] [--octaves N]
//   dwt97cli decompress    <in.dwt> <out.pgm>
//   dwt97cli tile          <in.pgm> <out.pgm> [--octaves N] [--tile N]
//                          [--threads N] [--backend NAME] [--design D]
//                          [--adder ARCH] [--opt-level 0|1|2]
//                          [--exec-tier interpreter|threaded|native|auto]
//   dwt97cli gen           <out.pgm> <width> <height> [seed]
//   dwt97cli synth         [design 1..5] [--adder ARCH]
//   dwt97cli verilog       <design 1..5> <out.v> [--adder ARCH]
//   dwt97cli psnr          <a.pgm> <b.pgm>
//   dwt97cli list-backends      (also accepted: --list-backends)
//   dwt97cli list-designs       (also accepted: --list-designs)
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "explore/explorer.hpp"
#include "fpga/report.hpp"
#include "hw/designs.hpp"
#include "hw/tile_scheduler.hpp"
#include "rtl/adder_arch.hpp"
#include "rtl/verilog_writer.hpp"

namespace {

std::string adder_arch_names() {
  std::string names;
  for (const dwt::rtl::AdderArch arch : dwt::rtl::all_adder_archs()) {
    if (!names.empty()) names += ", ";
    names += dwt::rtl::adder_name(arch);
  }
  return names;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dwt97cli compress   <in.pgm> <out.dwt> [--lossless] "
               "[--step S] [--octaves N]\n"
               "  dwt97cli decompress <in.dwt> <out.pgm>\n"
               "  dwt97cli tile       <in.pgm> <out.pgm> [--octaves N] "
               "[--tile N] [--threads N]\n"
               "                      [--backend NAME] [--design D] "
               "[--adder ARCH]\n"
               "                      [--opt-level 0|1|2] [--exec-tier "
               "interpreter|threaded|native|auto]\n"
               "  dwt97cli gen        <out.pgm> <width> <height> [seed]\n"
               "  dwt97cli synth      [design 1..5] [--adder ARCH]\n"
               "  dwt97cli verilog    <design 1..5> <out.v> [--adder ARCH]\n"
               "  dwt97cli psnr       <a.pgm> <b.pgm>\n"
               "  dwt97cli list-backends\n"
               "  dwt97cli list-designs\n"
               "backends: %s\n"
               "adders:   %s\n",
               dwt::core::backend_names().c_str(), adder_arch_names().c_str());
  return 2;
}

/// Strict numeric parsing: the whole token must be consumed and the value
/// must be in range, otherwise the command falls through to the usage error
/// (atoi-style silent zeros swallow typos like "--octaves 3x").
bool parse_long(const char* s, long min, long max, long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  // Check after the write AND the close: a full disk must exit nonzero, not
  // hand a truncated bitstream to the next pipeline stage.
  out.close();
  if (!out) throw std::runtime_error("write failed for " + path);
}

/// True when `arg` is one of the value-taking `flags`: prints the missing-
/// value diagnostic so a trailing flag does not fall through as an unknown
/// argument.
bool report_missing_value(const char* arg,
                          std::initializer_list<const char*> flags) {
  for (const char* f : flags) {
    if (std::strcmp(arg, f) == 0) {
      std::fprintf(stderr, "missing value for %s\n", f);
      return true;
    }
  }
  return false;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) return usage();
  dwt::codec::EncodeOptions opt;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lossless") == 0) {
      opt.mode = dwt::codec::CodecMode::kLossless53;
    } else if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc) {
      if (!parse_double(argv[++i], &opt.base_step) || opt.base_step <= 0.0) {
        std::fprintf(stderr, "bad --step value: %s\n", argv[i]);
        return usage();
      }
    } else if (std::strcmp(argv[i], "--octaves") == 0 && i + 1 < argc) {
      long octaves = 0;
      if (!parse_long(argv[++i], 1, 16, &octaves)) {
        std::fprintf(stderr, "bad --octaves value: %s\n", argv[i]);
        return usage();
      }
      opt.octaves = static_cast<int>(octaves);
    } else {
      (void)report_missing_value(argv[i], {"--step", "--octaves"});
      return usage();
    }
  }
  dwt::dsp::Image img = dwt::dsp::read_pgm(argv[2]);
  for (double& v : img.data()) v = std::round(v);
  const auto enc = dwt::codec::encode_image(img, opt);
  write_file(argv[3], enc.bytes);
  std::printf("%s: %zux%zu -> %zu bytes (%.2f bpp, %s)\n", argv[3],
              img.width(), img.height(), enc.bytes.size(),
              enc.bits_per_pixel(img.width(), img.height()),
              opt.mode == dwt::codec::CodecMode::kLossless53 ? "lossless 5/3"
                                                             : "lossy 9/7");
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc != 4) return usage();
  const dwt::dsp::Image img = dwt::codec::decode_image(read_file(argv[2]));
  dwt::dsp::write_pgm(img, argv[3]);
  std::printf("%s: %zux%zu\n", argv[3], img.width(), img.height());
  return 0;
}

// Forward+inverse through the tile-parallel pipeline and write the
// reconstruction: a round-trip exerciser for the tile scheduler on real
// image files (any dimensions).
int cmd_tile(int argc, char** argv) {
  if (argc < 4) return usage();
  dwt::hw::TileOptions opt;
  opt.method = dwt::dsp::Method::kLiftingFixed;
  opt.octaves = 2;
  for (int i = 4; i < argc; ++i) {
    long v = 0;
    if (std::strcmp(argv[i], "--octaves") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 1, 16, &v)) {
        std::fprintf(stderr, "bad --octaves value: %s\n", argv[i]);
        return usage();
      }
      opt.octaves = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--tile") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 1, 1 << 20, &v)) {
        std::fprintf(stderr, "bad --tile value: %s\n", argv[i]);
        return usage();
      }
      opt.tile_w = static_cast<std::size_t>(v);
      opt.tile_h = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_long(argv[++i], 0, 1024, &v)) {
        std::fprintf(stderr, "bad --threads value: %s\n", argv[i]);
        return usage();
      }
      opt.threads = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      opt.backend = dwt::core::find_backend(argv[++i]);
      if (opt.backend == nullptr) {
        std::fprintf(stderr, "unknown backend: %s (have: %s)\n", argv[i],
                     dwt::core::backend_names().c_str());
        return usage();
      }
    } else if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
      const std::optional<dwt::hw::DesignId> design =
          dwt::hw::parse_design(argv[++i]);
      if (!design) {
        std::fprintf(stderr, "bad --design value: %s\n", argv[i]);
        return usage();
      }
      opt.design = *design;
    } else if (std::strcmp(argv[i], "--adder") == 0 && i + 1 < argc) {
      // Adder-architecture override for the gate-level engines' datapath.
      // Every architecture streams bit-identical coefficients (the adders
      // are functionally equivalent), so like --opt-level this is an
      // area/f_max knob and a CI cross-check hook, not a mode switch.
      const std::optional<dwt::rtl::AdderArch> adder =
          dwt::rtl::parse_adder(argv[++i]);
      if (!adder) {
        std::fprintf(stderr, "bad --adder value: %s (have: %s)\n", argv[i],
                     adder_arch_names().c_str());
        return usage();
      }
      opt.adder = adder;
    } else if (std::strcmp(argv[i], "--opt-level") == 0 && i + 1 < argc) {
      // Tape optimization level for the rtl-compiled backend; other engines
      // ignore it.  Every level streams bit-identical output, so this is a
      // perf knob (and a CI cross-check hook), not a mode switch.
      if (!parse_long(argv[++i], 0, 2, &v)) {
        std::fprintf(stderr, "bad --opt-level value: %s\n", argv[i]);
        return usage();
      }
      opt.opt_level = static_cast<dwt::rtl::compiled::OptLevel>(v);
    } else if (std::strcmp(argv[i], "--exec-tier") == 0 && i + 1 < argc) {
      // How the rtl-compiled backend walks its tape: the switch or threaded
      // interpreter, the JIT'd native tier, or auto (fastest supported).
      // Every tier writes bit-identical output; DWT_EXEC_TIER overrides.
      if (!dwt::rtl::compiled::parse_exec_tier(argv[++i], &opt.exec_tier)) {
        std::fprintf(stderr, "bad --exec-tier value: %s\n", argv[i]);
        return usage();
      }
    } else {
      (void)report_missing_value(
          argv[i], {"--octaves", "--tile", "--threads", "--backend",
                    "--design", "--adder", "--opt-level", "--exec-tier"});
      return usage();
    }
  }
  dwt::dsp::Image img = dwt::dsp::read_pgm(argv[2]);
  const dwt::dsp::Image original = img;
  dwt::dsp::level_shift_forward(img);
  dwt::dsp::round_coefficients(img);
  const dwt::hw::TileStats stats = dwt::hw::tile_forward(img, opt);
  // Backends without a 2-D inverse (the gate-level engines) invert through
  // the software path: their forward is bit-identical to kLiftingFixed.
  dwt::hw::TileOptions inv = opt;
  if (inv.backend != nullptr && !inv.backend->caps().inverse_2d) {
    inv.backend = nullptr;
  }
  (void)dwt::hw::tile_inverse(img, inv);
  dwt::dsp::level_shift_inverse(img);
  dwt::dsp::write_pgm(img, argv[3]);
  std::printf("%s: %zux%zu, %zu tiles on %u threads, round-trip %.2f dB\n",
              argv[3], img.width(), img.height(), stats.tiles,
              stats.threads_used,
              dwt::dsp::psnr(original.clamped_u8(), img.clamped_u8()));
  return 0;
}

// Writes a deterministic still-tone test image; lets CI exercise the PGM
// pipeline on arbitrary (e.g. odd) dimensions without binary fixtures.
int cmd_gen(int argc, char** argv) {
  if (argc < 5 || argc > 6) return usage();
  long w = 0, h = 0, seed = 1;
  if (!parse_long(argv[3], 1, 1 << 16, &w) ||
      !parse_long(argv[4], 1, 1 << 16, &h) ||
      (argc == 6 && !parse_long(argv[5], 0, 1L << 40, &seed))) {
    std::fprintf(stderr, "bad gen arguments\n");
    return usage();
  }
  dwt::dsp::Image img = dwt::dsp::make_still_tone_image(
      static_cast<std::size_t>(w), static_cast<std::size_t>(h),
      static_cast<std::uint64_t>(seed));
  dwt::dsp::write_pgm(img, argv[2]);
  std::printf("%s: %ldx%ld seed %ld\n", argv[2], w, h, seed);
  return 0;
}

int cmd_synth(int argc, char** argv) {
  std::optional<dwt::hw::DesignId> design;
  std::optional<dwt::rtl::AdderArch> adder;
  int i = 2;
  if (i < argc && std::strncmp(argv[i], "--", 2) != 0) {
    design = dwt::hw::parse_design(argv[i]);
    if (!design) return usage();
    ++i;
  }
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adder") == 0 && i + 1 < argc) {
      adder = dwt::rtl::parse_adder(argv[++i]);
      if (!adder) {
        std::fprintf(stderr, "bad --adder value: %s (have: %s)\n", argv[i],
                     adder_arch_names().c_str());
        return usage();
      }
    } else {
      (void)report_missing_value(argv[i], {"--adder"});
      return usage();
    }
  }
  if (adder.has_value() && !design.has_value()) {
    std::fprintf(stderr, "--adder needs a design argument\n");
    return usage();
  }
  dwt::explore::Explorer explorer;
  if (design) {
    dwt::hw::DesignSpec spec = dwt::hw::design_spec(*design);
    if (adder.has_value()) {
      spec.config.adder_style = *adder;
      spec.name = dwt::hw::design_point_name(*design, adder);
    }
    const auto eval = explorer.evaluate(spec);
    std::printf("%s\n", eval.report.to_string().c_str());
    return 0;
  }
  std::printf("%s\n", dwt::fpga::format_table3_header().c_str());
  for (const auto& eval : explorer.evaluate_all()) {
    std::printf("%s\n", dwt::fpga::format_table3_row(eval.report).c_str());
  }
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::optional<dwt::hw::DesignId> design =
      dwt::hw::parse_design(argv[2]);
  if (!design) return usage();
  std::optional<dwt::rtl::AdderArch> adder;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adder") == 0 && i + 1 < argc) {
      adder = dwt::rtl::parse_adder(argv[++i]);
      if (!adder) {
        std::fprintf(stderr, "bad --adder value: %s (have: %s)\n", argv[i],
                     adder_arch_names().c_str());
        return usage();
      }
    } else {
      (void)report_missing_value(argv[i], {"--adder"});
      return usage();
    }
  }
  const auto dp =
      adder.has_value()
          ? dwt::hw::build_lifting_datapath(
                dwt::hw::design_config(*design, /*max_octaves=*/1, adder))
          : dwt::hw::build_design(*design);
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[3]);
    return 1;
  }
  dwt::rtl::write_verilog(dp.netlist, "dwt_lifting_core", out);
  std::printf("%s: design %d (%zu cells, latency %d)\n", argv[3],
              dwt::hw::design_index(*design), dp.netlist.cell_count(),
              dp.info.latency);
  return 0;
}

int cmd_list_backends() {
  std::printf("%-16s %-5s %-6s %-6s %-4s %-4s %s\n", "backend", "gates",
              "cycles", "exact", "2d", "inv", "description");
  for (const dwt::core::ExecutionBackend* b : dwt::core::all_backends()) {
    const dwt::core::BackendCaps caps = b->caps();
    std::printf("%-16s %-5s %-6s %-6s %-4s %-4s %s\n",
                std::string(b->name()).c_str(), caps.gate_level ? "yes" : "-",
                caps.cycle_accurate ? "yes" : "-",
                caps.bit_exact ? "yes" : "-", caps.forward_2d ? "yes" : "-",
                caps.inverse_2d ? "yes" : "-",
                std::string(b->description()).c_str());
  }
  return 0;
}

int cmd_list_designs() {
  std::printf("%-24s %-13s %-6s %-10s %-12s %s\n", "design", "adder", "depth",
              "area(LE)", "fmax(MHz)", "description");
  const auto table = dwt::hw::paper_table3();
  const auto designs = dwt::hw::all_designs();
  for (std::size_t i = 0; i < designs.size(); ++i) {
    std::printf("%-24s %-13s %-6d %-10d %-12.1f %s\n", designs[i].name.c_str(),
                dwt::rtl::adder_name(designs[i].config.adder_style),
                table[i].pipeline_stages, table[i].area_les,
                table[i].fmax_mhz, designs[i].description.c_str());
  }
  // The (design x adder) variant points extend the space beyond paper
  // Table 3, so the published area/f_max columns do not apply; the pipeline
  // depth matches the base design (the adder swap is purely combinational).
  for (const dwt::hw::DesignSpec& spec : dwt::hw::adder_variant_designs()) {
    const int idx = dwt::hw::design_index(spec.id);
    std::printf("%-24s %-13s %-6d %-10s %-12s %s\n", spec.name.c_str(),
                dwt::rtl::adder_name(spec.config.adder_style),
                table[static_cast<std::size_t>(idx - 1)].pipeline_stages, "-",
                "-", spec.description.c_str());
  }
  return 0;
}

int cmd_psnr(int argc, char** argv) {
  if (argc != 4) return usage();
  const dwt::dsp::Image a = dwt::dsp::read_pgm(argv[2]);
  const dwt::dsp::Image b = dwt::dsp::read_pgm(argv[3]);
  std::printf("%.3f dB\n", dwt::dsp::psnr(a, b));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "compress") == 0) return cmd_compress(argc, argv);
    if (std::strcmp(argv[1], "decompress") == 0) {
      return cmd_decompress(argc, argv);
    }
    if (std::strcmp(argv[1], "tile") == 0) return cmd_tile(argc, argv);
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "synth") == 0) return cmd_synth(argc, argv);
    if (std::strcmp(argv[1], "verilog") == 0) return cmd_verilog(argc, argv);
    if (std::strcmp(argv[1], "psnr") == 0) return cmd_psnr(argc, argv);
    if (std::strcmp(argv[1], "list-backends") == 0 ||
        std::strcmp(argv[1], "--list-backends") == 0) {
      return cmd_list_backends();
    }
    if (std::strcmp(argv[1], "list-designs") == 0 ||
        std::strcmp(argv[1], "--list-designs") == 0) {
      return cmd_list_designs();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
