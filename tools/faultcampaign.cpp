// faultcampaign -- deterministic soft-error campaigns over the five DWT
// architectures, with optional TMR / parity hardening.
//
//   faultcampaign --design 1..5 [--adder ARCH] [--faults seu,glitch,sa0,sa1]
//                 [--trials N]
//                 [--seed S] [--harden none|tmr|parity] [--samples N]
//                 [--engine interpreted|compiled] [--threads N]
//                 [--backend rtl-interpreted|rtl-compiled]
//                 [--lanes 64|128|256] [--opt-level 0|1] [--no-cone]
//                 [--exec-tier interpreter|threaded|native|auto]
//                 [--shards N --shard-index I] [--checkpoint FILE]
//                 [--checkpoint-every N]
//                 [--no-trial-list] [--out report.json]
//   faultcampaign merge OUT.json SHARD.json...
//
// Emits a JSON report (stdout by default).  Identical arguments produce
// byte-identical output, so reports diff cleanly across revisions -- and
// the two engines produce byte-identical reports for the same seed, so
// `--engine interpreted` remains available as a cross-check of the fast
// (default) compiled bit-parallel engine.  `--backend` selects the engine
// by its core registry name (the same names dwt97cli and the benches use);
// campaigns inject faults at netlist granularity, so only the gate-level
// rtl backends are accepted.  `--lanes` packs that many fault trials into
// one compiled tape pass; `--opt-level` picks the tape optimization level
// (0 = raw, 1 = fault-overlay-safe passes; the full level drops the
// overlay guarantees campaigns need and is rejected here); `--no-cone`
// turns off the cone-restricted incremental engine.  None of these knobs
// changes the report bytes.  `--adder` swaps the design's adder
// architecture (carry-chain, ripple-gates, kogge-stone, brent-kung,
// hybrid-ksbk): unlike the perf knobs this changes the netlist and hence
// the fault space, so it IS part of the campaign identity (and of the
// checkpoint fingerprint).
//
// Scale-out: `--shards N --shard-index I` executes only shard I's
// contiguous slice of the trial schedule (same seed on every shard);
// `faultcampaign merge` folds the per-shard reports back into the exact
// bytes the unsharded run prints, in any argument order.  `--checkpoint`
// makes a run crash-tolerant: progress is persisted atomically after every
// chunk (`--checkpoint-every`, default 8192 trials) and a killed run
// restarted with the same arguments resumes from the checkpoint with
// byte-identical output.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "explore/campaign_io.hpp"
#include "explore/resilience.hpp"
#include "rtl/adder_arch.hpp"

namespace {

/// Strict unsigned parsing: the whole token must be consumed (atoi-style
/// silent zeros turn "--trials 10O" into an empty campaign).
bool parse_u64(const char* s, unsigned long long max, unsigned long long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (*s == '-' || v > max) return false;
  *out = v;
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  faultcampaign --design 1..5 [--adder ARCH]\n"
      "                [--faults seu,glitch,sa0,sa1]\n"
      "                [--trials N] [--seed S] [--harden none|tmr|parity]\n"
      "                [--samples N] [--engine interpreted|compiled]\n"
      "                [--backend rtl-interpreted|rtl-compiled]\n"
      "                [--lanes 64|128|256] [--opt-level 0|1] [--no-cone]\n"
      "                [--exec-tier interpreter|threaded|native|auto]\n"
      "                [--shards N --shard-index I] [--checkpoint FILE]\n"
      "                [--checkpoint-every N]\n"
      "                [--threads N] [--no-trial-list] [--out report.json]\n"
      "  faultcampaign merge OUT.json SHARD.json...\n");
  return 2;
}

/// Writes `text` to `path`, failing loudly: a partial report on a full disk
/// must not exit 0 and poison a downstream merge.
bool write_file_checked(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

/// `faultcampaign merge OUT.json SHARD.json...`: folds per-shard reports
/// into the byte-exact unsharded report.
int run_merge(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "merge needs an output path and at least one "
                         "shard report\n");
    return usage();
  }
  const std::string out_path = argv[2];
  std::vector<std::string> reports;
  reports.reserve(static_cast<std::size_t>(argc - 3));
  for (int i = 3; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) {
      std::fprintf(stderr, "read failed for %s\n", argv[i]);
      return 1;
    }
    reports.push_back(std::move(text));
  }
  try {
    const std::string merged = dwt::explore::merge_reports(reports);
    if (out_path == "-") {
      std::fputs(merged.c_str(), stdout);
    } else if (!write_file_checked(out_path, merged)) {
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

bool parse_kinds(const std::string& arg,
                 std::vector<dwt::rtl::FaultKind>& kinds) {
  kinds.clear();
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string tok = arg.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok == "seu") {
      kinds.push_back(dwt::rtl::FaultKind::kSeuFlip);
    } else if (tok == "glitch") {
      kinds.push_back(dwt::rtl::FaultKind::kGlitch);
    } else if (tok == "sa0") {
      kinds.push_back(dwt::rtl::FaultKind::kStuckAt0);
    } else if (tok == "sa1") {
      kinds.push_back(dwt::rtl::FaultKind::kStuckAt1);
    } else {
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !kinds.empty();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) {
    return run_merge(argc, argv);
  }
  dwt::explore::ResilienceOptions opt;
  opt.seed = 42;
  std::string out_path;
  bool design_set = false;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--design") == 0) {
      const char* v = need_value("--design");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 5, &n) || n < 1) {
        std::fprintf(stderr, "bad --design value\n");
        return usage();
      }
      opt.design = static_cast<dwt::hw::DesignId>(n - 1);
      design_set = true;
    } else if (std::strcmp(argv[i], "--adder") == 0) {
      // Changes the netlist (and hence the fault space), unlike the
      // engine/lanes/tier knobs which never change the report bytes.
      const char* v = need_value("--adder");
      std::optional<dwt::rtl::AdderArch> adder;
      if (v != nullptr) adder = dwt::rtl::parse_adder(v);
      if (!adder) {
        std::fprintf(stderr,
                     "bad --adder value (carry-chain, ripple-gates, "
                     "kogge-stone, brent-kung or hybrid-ksbk)\n");
        return usage();
      }
      opt.adder = adder;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      const char* v = need_value("--faults");
      if (v == nullptr || !parse_kinds(v, opt.kinds)) return usage();
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      const char* v = need_value("--trials");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1ull << 32, &n) || n < 1) {
        std::fprintf(stderr, "bad --trials value\n");
        return usage();
      }
      opt.trials = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need_value("--seed");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, ~0ull, &n)) {
        std::fprintf(stderr, "bad --seed value\n");
        return usage();
      }
      opt.seed = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(argv[i], "--samples") == 0) {
      const char* v = need_value("--samples");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1ull << 24, &n) || n < 2) {
        std::fprintf(stderr, "bad --samples value\n");
        return usage();
      }
      opt.samples = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--harden") == 0) {
      const char* v = need_value("--harden");
      if (v == nullptr) return usage();
      if (std::strcmp(v, "none") == 0) {
        opt.harden = dwt::rtl::HardeningStyle::kNone;
      } else if (std::strcmp(v, "tmr") == 0) {
        opt.harden = dwt::rtl::HardeningStyle::kTmr;
      } else if (std::strcmp(v, "parity") == 0) {
        opt.harden = dwt::rtl::HardeningStyle::kParity;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      const char* v = need_value("--engine");
      if (v == nullptr) return usage();
      if (std::strcmp(v, "interpreted") == 0) {
        opt.engine = dwt::explore::CampaignEngine::kInterpreted;
      } else if (std::strcmp(v, "compiled") == 0) {
        opt.engine = dwt::explore::CampaignEngine::kCompiled;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* v = need_value("--backend");
      if (v == nullptr) return usage();
      const std::optional<dwt::explore::CampaignEngine> engine =
          dwt::explore::engine_from_backend(v);
      if (!engine) {
        std::fprintf(stderr,
                     "bad --backend value: %s (campaigns run on "
                     "rtl-interpreted or rtl-compiled)\n",
                     v);
        return usage();
      }
      opt.engine = *engine;
    } else if (std::strcmp(argv[i], "--lanes") == 0) {
      const char* v = need_value("--lanes");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 256, &n) ||
          (n != 64 && n != 128 && n != 256)) {
        std::fprintf(stderr, "bad --lanes value (64, 128 or 256)\n");
        return usage();
      }
      opt.lanes = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--opt-level") == 0) {
      const char* v = need_value("--opt-level");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1, &n)) {
        std::fprintf(stderr,
                     "bad --opt-level value (0 or 1; level 2 drops the "
                     "fault-overlay guarantees campaigns need)\n");
        return usage();
      }
      opt.opt_level = static_cast<dwt::rtl::compiled::OptLevel>(n);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1024, &n)) {
        std::fprintf(stderr, "bad --threads value\n");
        return usage();
      }
      opt.threads = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--no-cone") == 0) {
      opt.cone = false;
    } else if (std::strcmp(argv[i], "--exec-tier") == 0) {
      // How the compiled engine walks its tape (full-range settles only;
      // force-pinned and cone-restricted evals always run a portable tier).
      // Like --lanes/--threads/--opt-level this never changes the report
      // bytes.
      const char* v = need_value("--exec-tier");
      if (v == nullptr || !dwt::rtl::compiled::parse_exec_tier(v, &opt.exec_tier)) {
        std::fprintf(stderr, "bad --exec-tier value (interpreter, threaded, "
                             "native or auto)\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1ull << 20, &n) || n < 1) {
        std::fprintf(stderr, "bad --shards value\n");
        return usage();
      }
      opt.shard_count = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--shard-index") == 0) {
      const char* v = need_value("--shard-index");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1ull << 20, &n)) {
        std::fprintf(stderr, "bad --shard-index value\n");
        return usage();
      }
      opt.shard_index = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      const char* v = need_value("--checkpoint");
      if (v == nullptr) return usage();
      opt.checkpoint_file = v;
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      const char* v = need_value("--checkpoint-every");
      unsigned long long n = 0;
      if (v == nullptr || !parse_u64(v, 1ull << 32, &n) || n < 1) {
        std::fprintf(stderr, "bad --checkpoint-every value\n");
        return usage();
      }
      opt.checkpoint_every = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--no-trial-list") == 0) {
      opt.keep_trials = false;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (v == nullptr) return usage();
      out_path = v;
    } else {
      return usage();
    }
  }
  if (!design_set) return usage();

  try {
    const dwt::explore::CampaignResult result =
        dwt::explore::run_campaign(opt);
    const std::string json = dwt::explore::to_json(result);
    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      if (!write_file_checked(out_path, json)) return 1;
      std::fprintf(stderr, "%s: %zu trials written\n", out_path.c_str(),
                   result.trials_run);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
